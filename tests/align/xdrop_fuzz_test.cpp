// Property fuzz for the X-drop wavefront engine: across random pairs,
// mutation profiles (substitutions + indels), X-drop thresholds and
// degenerate inputs, the linear-memory engine must be bit-identical to the
// naive full-matrix oracle (align/xdrop_reference.hpp) in score, endpoint
// AND canonical CIGAR — and its measured peak heap footprint must stay
// O(N + M) (allocation-counting via WavefrontStats::peak_bytes, which sums
// live container capacities at every phase boundary).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "align/traceback.hpp"
#include "align/xdrop_reference.hpp"
#include "align/xdrop_wavefront.hpp"
#include "seq/alphabet.hpp"
#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace saloba::align {
namespace {

/// Mutated copy with substitutions AND indels, so fuzzed CIGARs exercise
/// every op and the Myers-Miller gap bookkeeping.
std::vector<seq::BaseCode> mutate_indel(util::Xoshiro256& rng,
                                        const std::vector<seq::BaseCode>& src, double sub_p,
                                        double indel_p) {
  std::vector<seq::BaseCode> out;
  out.reserve(src.size() + 8);
  for (const auto b : src) {
    if (indel_p > 0 && rng.bernoulli(indel_p)) {
      if (rng.below(2) == 0) continue;  // deletion
      out.push_back(static_cast<seq::BaseCode>(rng.below(4)));  // insertion
    }
    out.push_back(rng.bernoulli(sub_p) ? static_cast<seq::BaseCode>(rng.below(4)) : b);
  }
  return out;
}

/// Engine vs oracle on one pair: score/endpoint equality, CIGAR
/// bit-identity, structural validity, exact rescore, and the linear-memory
/// bound on the engine's measured peak.
void check_pair(const std::vector<seq::BaseCode>& ref,
                const std::vector<seq::BaseCode>& query, const ScoringScheme& s, Score xdrop,
                const char* tag) {
  const XDropParams params{.xdrop = xdrop};
  WavefrontStats stats;
  const auto scored = xdrop_wavefront_score(ref, query, s, params);
  const auto engine = xdrop_wavefront_align(ref, query, s, params, &stats);
  const auto oracle = xdrop_reference_align(ref, query, s, params);

  ASSERT_EQ(scored, xdrop_reference_score(ref, query, s, params))
      << tag << " xdrop=" << xdrop;
  ASSERT_EQ(engine.end, scored) << tag << " xdrop=" << xdrop;
  ASSERT_EQ(engine, oracle) << tag << " xdrop=" << xdrop << " engine='" << engine.cigar
                            << "' oracle='" << oracle.cigar << "'";
  if (scored.score > 0) {
    ASSERT_TRUE(cigar_consistent(engine, ref.size(), query.size())) << tag;
    ASSERT_EQ(rescore_cigar(engine, ref, query, s), scored.score) << tag;
  }

  // O(N + M) invariant, measured: generous constant, nowhere near N*M.
  const std::size_t linear = ref.size() + query.size() + 2;
  ASSERT_LE(stats.peak_bytes, 128 * linear + 4096) << tag << " xdrop=" << xdrop;
}

struct FuzzCase {
  std::uint64_t seed;
  std::size_t ref_len, query_len;
  double sub_p, indel_p;
  bool with_n;
};

class XdropFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(XdropFuzz, EngineBitIdenticalToFullMatrixOracle) {
  const FuzzCase fc = GetParam();
  ScoringScheme s;
  util::Xoshiro256 rng(fc.seed);
  const Score thresholds[] = {0, 8, 20, 50, 1 << 20};
  for (int it = 0; it < 6; ++it) {
    auto ref = fc.with_n ? saloba::testing::random_seq_with_n(rng, fc.ref_len, 0.05)
                         : saloba::testing::random_seq(rng, fc.ref_len);
    std::vector<seq::BaseCode> query;
    if (fc.query_len <= fc.ref_len) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(fc.query_len));
      query = mutate_indel(rng, query, fc.sub_p, fc.indel_p);
    } else {
      query = fc.with_n ? saloba::testing::random_seq_with_n(rng, fc.query_len, 0.05)
                        : saloba::testing::random_seq(rng, fc.query_len);
    }
    for (const Score xdrop : thresholds) {
      check_pair(ref, query, s, xdrop, "fuzz");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, XdropFuzz,
    ::testing::Values(
        FuzzCase{7001, 16, 16, 0.05, 0.0, false},    // tiny related
        FuzzCase{7002, 60, 60, 0.1, 0.03, false},    // medium with indels
        FuzzCase{7003, 120, 110, 0.05, 0.05, false}, // indel-heavy
        FuzzCase{7004, 90, 90, 0.3, 0.08, false},    // high divergence
        FuzzCase{7005, 40, 160, 0.0, 0.0, false},    // unrelated, query longer
        FuzzCase{7006, 160, 40, 0.1, 0.02, false},   // short query in long ref
        FuzzCase{7007, 80, 80, 0.1, 0.04, true},     // N-heavy alphabet
        FuzzCase{7008, 1, 140, 0.0, 0.0, false},     // single-base ref
        FuzzCase{7009, 140, 1, 0.0, 0.0, false}));   // single-base query

TEST(XdropFuzz, SplitPeakPairsExerciseThePruneBoundary) {
  // Two strong local optima separated by a divergent gulf: small X-drop must
  // terminate inside the gulf in both implementations, identically.
  ScoringScheme s;
  util::Xoshiro256 rng(7101);
  for (int it = 0; it < 10; ++it) {
    auto left = saloba::testing::random_seq(rng, 50);
    auto gulf_r = saloba::testing::random_seq(rng, 60);
    auto gulf_q = saloba::testing::random_seq(rng, 60);
    auto right = saloba::testing::random_seq(rng, 70);

    std::vector<seq::BaseCode> ref = left;
    ref.insert(ref.end(), gulf_r.begin(), gulf_r.end());
    ref.insert(ref.end(), right.begin(), right.end());
    std::vector<seq::BaseCode> query = mutate_indel(rng, left, 0.08, 0.02);
    query.insert(query.end(), gulf_q.begin(), gulf_q.end());
    auto right_q = mutate_indel(rng, right, 0.08, 0.02);
    query.insert(query.end(), right_q.begin(), right_q.end());

    for (const Score xdrop : {Score{6}, Score{12}, Score{30}, Score{200}}) {
      check_pair(ref, query, s, xdrop, "split-peak");
    }
  }
}

TEST(XdropFuzz, DegenerateInputsMatchOracle) {
  ScoringScheme s;
  const std::vector<seq::BaseCode> empty;
  const std::vector<seq::BaseCode> all_n(25, seq::kBaseN);
  const std::vector<seq::BaseCode> homo_a(64, seq::encode_base('A'));
  const std::vector<seq::BaseCode> homo_c(40, seq::encode_base('C'));
  const auto mixed = seq::encode_string("ACGTNNACGTACGTNACGT");

  const std::vector<std::pair<std::vector<seq::BaseCode>, std::vector<seq::BaseCode>>> cases = {
      {empty, empty},  {empty, homo_a}, {homo_a, empty}, {all_n, all_n},
      {all_n, mixed},  {homo_a, homo_a}, {homo_a, homo_c}, {homo_c, homo_a},
      {mixed, mixed},
  };
  for (std::size_t c = 0; c < cases.size(); ++c) {
    for (const Score xdrop : {Score{0}, Score{4}, Score{100}}) {
      check_pair(cases[c].first, cases[c].second, s, xdrop, "degenerate");
    }
  }
}

TEST(XdropFuzz, HomopolymerTiesAreCanonical) {
  // Pure-repeat pairs maximize DP ties; every tie-break in the engine and
  // oracle must fire identically for the CIGARs to match bit-for-bit.
  ScoringScheme s;
  for (const std::size_t n : {8u, 31u, 64u}) {
    for (const std::size_t m : {5u, 33u, 64u}) {
      const std::vector<seq::BaseCode> ref(n, seq::encode_base('G'));
      const std::vector<seq::BaseCode> query(m, seq::encode_base('G'));
      for (const Score xdrop : {Score{0}, Score{3}, Score{50}}) {
        check_pair(ref, query, s, xdrop, "homopolymer");
      }
    }
  }
}

TEST(XdropFuzz, LinearMemoryHoldsOnLargePrunedPair) {
  // Engine-only (the oracle is O(N*M)): a pair far beyond any full-matrix
  // budget still aligns, rescoring exactly, inside the measured linear bound.
  ScoringScheme s;
  util::Xoshiro256 rng(7201);
  const std::size_t n = 20000;
  auto ref = saloba::testing::random_seq(rng, n);
  auto query = mutate_indel(rng, ref, 0.08, 0.03);

  WavefrontStats stats;
  const XDropParams params{.xdrop = 60};
  const auto traced = xdrop_wavefront_align(ref, query, s, params, &stats);
  ASSERT_GT(traced.end.score, 0);
  ASSERT_TRUE(cigar_consistent(traced, ref.size(), query.size()));
  ASSERT_EQ(rescore_cigar(traced, ref, query, s), traced.end.score);

  const std::size_t linear = ref.size() + query.size();
  EXPECT_LE(stats.peak_bytes, 128 * linear + 4096);
  // ... and strictly below what any quadratic representation would need.
  EXPECT_LT(stats.peak_bytes, ref.size() * query.size() / 100);
}

}  // namespace
}  // namespace saloba::align
