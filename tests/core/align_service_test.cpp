// AlignService invariants: a session's results are bit-identical to running
// its pairs standalone through Aligner::align (continuous batching across
// tenants never changes scores, traces, or order), spans arrive in submit
// order, weighted fairness and strict priority govern who a merged batch
// serves, admission control blocks producers at the cap, cancellation frees
// queued work without stalling other tenants, and shutdown unblocks every
// waiter cleanly.
#include "core/align_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "../support/test_support.hpp"
#include "core/aligner.hpp"

namespace saloba::core {
namespace {

AlignerOptions sim_options() {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "gtx1650";
  return opts;
}

/// Drains a session, reassembling its spans into flat result/trace vectors
/// and asserting the spans arrive contiguous and in submit order.
struct Drained {
  std::vector<align::AlignmentResult> results;
  std::vector<align::TracedAlignment> traced;
};
Drained drain_session(AlignService& service, SessionId id) {
  Drained d;
  std::size_t expect_first = 0;
  while (auto span = service.poll(id)) {
    EXPECT_EQ(span->first_pair, expect_first);  // contiguous, in order
    expect_first += span->results.size();
    d.results.insert(d.results.end(), span->results.begin(), span->results.end());
    d.traced.insert(d.traced.end(), span->traced.begin(), span->traced.end());
  }
  return d;
}

TEST(AlignService, SessionsBitIdenticalToStandaloneCpu) {
  AlignerOptions opts;  // CPU
  auto batch_a = saloba::testing::imbalanced_batch(901, 57, 20, 300);
  auto batch_b = saloba::testing::related_batch(902, 43, 60, 90);
  auto expected_a = Aligner(opts).align(batch_a);
  auto expected_b = Aligner(opts).align(batch_b);

  ServiceOptions svc;
  svc.batch_pairs = 16;  // far smaller than either session: forces merging
  AlignService service(opts, svc);
  SessionId a = service.open();
  SessionId b = service.open();
  // Interleaved submission so merged batches mix both tenants.
  ASSERT_TRUE(service.submit(a, batch_a));
  ASSERT_TRUE(service.submit(b, batch_b));
  service.finish(a);
  service.finish(b);

  EXPECT_EQ(drain_session(service, a).results, expected_a.results);
  EXPECT_EQ(drain_session(service, b).results, expected_b.results);

  // Per-tenant attribution partitions the service aggregates.
  auto stats = service.stats();
  EXPECT_EQ(stats.pairs, batch_a.size() + batch_b.size());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.gcups, 0.0);
  std::size_t session_cells = 0;
  double session_ms = 0.0;
  for (const auto& [id, ss] : stats.session_stats) {
    session_cells += ss.cells;
    session_ms += ss.align_ms;
    EXPECT_EQ(ss.completed_pairs, ss.submitted_pairs);
    EXPECT_GT(ss.p50_latency_ms, 0.0);
    EXPECT_GE(ss.p99_latency_ms, ss.p50_latency_ms);
  }
  EXPECT_EQ(session_cells, stats.cells);
  EXPECT_NEAR(session_ms, stats.align_ms, 1e-6 + 1e-9 * stats.align_ms);
}

TEST(AlignService, SessionsBitIdenticalToStandaloneSimBandedTraceback) {
  // The full two-phase banded path on the simulated device: every session's
  // scores AND traces must match its standalone run exactly, regardless of
  // how the batcher merged the three tenants.
  AlignerOptions opts = sim_options();
  opts.traceback = true;
  opts.band = 8;
  opts.band_frac = 0.1;
  std::vector<seq::PairBatch> batches;
  batches.push_back(saloba::testing::imbalanced_batch(903, 31, 30, 400));
  batches.push_back(saloba::testing::related_batch(904, 25, 80, 120));
  batches.push_back(saloba::testing::imbalanced_batch(905, 19, 20, 200));

  ServiceOptions svc;
  svc.batch_pairs = 8;
  svc.align_threads = 2;  // replicas, like StreamOptions::align_threads
  AlignService service(opts, svc);
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < batches.size(); ++s) ids.push_back(service.open());
  for (std::size_t s = 0; s < batches.size(); ++s) {
    ASSERT_TRUE(service.submit(ids[s], batches[s]));
    service.finish(ids[s]);
  }
  for (std::size_t s = 0; s < batches.size(); ++s) {
    auto expected = Aligner(opts).align(batches[s]);
    Drained got = drain_session(service, ids[s]);
    EXPECT_EQ(got.results, expected.results) << "session " << s;
    EXPECT_EQ(got.traced, expected.traced) << "session " << s;
  }
}

TEST(AlignService, SessionOwnBandsWinOverServiceBandPolicy) {
  // A tenant submitting a batch with its own per-pair bands (the seedext
  // job shape) must keep them through merging with an unbanded tenant,
  // under an Aligner-level band policy — exactly the one-shot rule.
  util::Xoshiro256 rng(906);
  seq::PairBatch banded;
  for (int i = 0; i < 24; ++i) {
    std::size_t len = 30 + rng.below(150);
    banded.add(saloba::testing::random_seq(rng, len),
               saloba::testing::random_seq(rng, len + rng.below(40)),
               i % 3 == 0 ? 0 : 1 + rng.below(16));
  }
  auto plain = saloba::testing::related_batch(907, 20, 50, 70);

  AlignerOptions opts;
  opts.band = 5;  // applies to `plain`, must NOT clobber `banded`'s channel
  auto expected_banded = Aligner(opts).align(banded);
  auto expected_plain = Aligner(opts).align(plain);

  ServiceOptions svc;
  svc.batch_pairs = 8;
  AlignService service(opts, svc);
  SessionId sb = service.open();
  SessionId sp = service.open();
  ASSERT_TRUE(service.submit(sb, banded));
  ASSERT_TRUE(service.submit(sp, plain));
  service.finish(sb);
  service.finish(sp);
  EXPECT_EQ(drain_session(service, sb).results, expected_banded.results);
  EXPECT_EQ(drain_session(service, sp).results, expected_plain.results);
}

TEST(AlignService, AlignConvenienceMatchesAlignerOneShot) {
  AlignerOptions opts = sim_options();
  opts.traceback = true;
  auto batch = saloba::testing::imbalanced_batch(908, 37, 30, 350);
  auto expected = Aligner(opts).align(batch);

  ServiceOptions svc;
  svc.batch_pairs = 8;
  AlignService service(opts, svc);
  auto out = service.align(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.traced, expected.traced);
  EXPECT_GT(out.cells, 0u);
  EXPECT_GT(out.time_ms, 0.0);
  ASSERT_TRUE(out.time_breakdown.has_value());
  EXPECT_GT(out.time_breakdown->total_ms, 0.0);
}

TEST(AlignService, EmptyBatchAndEmptySessionAreWellFormed) {
  AlignService service(AlignerOptions{});
  // A session that finishes without submitting drains immediately.
  SessionId id = service.open();
  service.finish(id);
  EXPECT_FALSE(service.poll(id).has_value());
  // align() on an empty batch: empty, zeroed, NaN-free.
  auto out = service.align(seq::PairBatch{});
  EXPECT_TRUE(out.results.empty());
  EXPECT_DOUBLE_EQ(out.gcups, 0.0);
  EXPECT_FALSE(out.gcups != out.gcups);  // not NaN
}

TEST(AlignService, ManyConcurrentClientThreadsAllBitIdentical) {
  // The multiplexing claim under real concurrency: 8 client threads, each
  // one tenant pushing its own workload through align(), all sharing one
  // continuously batched backend — every client sees exactly its standalone
  // results.
  AlignerOptions opts = sim_options();
  ServiceOptions svc;
  svc.batch_pairs = 16;
  svc.align_threads = 2;
  AlignService service(opts, svc);

  constexpr int kClients = 8;
  std::vector<seq::PairBatch> batches;
  std::vector<AlignOutput> expected;
  for (int c = 0; c < kClients; ++c) {
    batches.push_back(
        saloba::testing::imbalanced_batch(910 + static_cast<std::uint64_t>(c),
                                          20 + static_cast<std::size_t>(c) * 3, 20, 250));
    expected.push_back(Aligner(opts).align(batches.back()));
  }
  std::vector<AlignOutput> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SessionOptions sopts;
      sopts.weight = 1.0 + c % 3;  // mixed weights; results must not care
      got[static_cast<std::size_t>(c)] =
          service.align(batches[static_cast<std::size_t>(c)], sopts);
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[static_cast<std::size_t>(c)].results,
              expected[static_cast<std::size_t>(c)].results)
        << "client " << c;
  }
  auto stats = service.stats();
  EXPECT_EQ(stats.sessions, static_cast<std::size_t>(kClients));
  EXPECT_GT(stats.batches, 0u);
}

// Occupies the single worker and the single in-flight slot long enough for
// the test to stage deep backlogs: while the worker chews the blocker's
// first merged batch, the batcher sits blocked pushing the third, so pairs
// submitted meanwhile all queue up and later batches are built from the
// full picture — deterministic fairness, no sleeps.
SessionId submit_blocker(AlignService& service, std::size_t batch_pairs) {
  SessionId blocker = service.open();
  EXPECT_TRUE(service.submit(
      blocker, saloba::testing::related_batch(990, 3 * batch_pairs, 1200, 1200)));
  service.finish(blocker);
  return blocker;
}

TEST(AlignService, WeightedFairShareWithinPriorityClass) {
  AlignerOptions opts;  // CPU: real work, so batches take real time
  ServiceOptions svc;
  svc.batch_pairs = 16;
  svc.max_inflight_batches = 1;
  AlignService service(opts, svc);
  SessionId blocker = submit_blocker(service, svc.batch_pairs);

  constexpr std::size_t kN = 384;
  SessionOptions heavy_opts;
  heavy_opts.weight = 3.0;
  SessionId heavy = service.open(heavy_opts);
  SessionId light = service.open();  // weight 1
  auto heavy_batch = saloba::testing::related_batch(991, kN, 600, 600);
  auto light_batch = saloba::testing::related_batch(992, kN, 600, 600);
  ASSERT_TRUE(service.submit(heavy, heavy_batch));
  ASSERT_TRUE(service.submit(light, light_batch));
  service.finish(heavy);
  service.finish(light);

  // Drain the heavy session; at the moment its last span lands, the light
  // tenant — equal backlog, third the weight — should have completed about
  // a third as much (12:4 per 16-pair merged batch), far from the ~kN/2 an
  // unweighted split would show.
  Drained got = drain_session(service, heavy);
  auto light_now = service.session_stats(light);
  EXPECT_GE(light_now.completed_pairs, kN / 8);      // never starved
  EXPECT_LE(light_now.completed_pairs, 160u);        // ~kN/3 + batch slack
  EXPECT_GT(light_now.queued_pairs + light_now.inflight_pairs, 0u);

  EXPECT_EQ(got.results, Aligner(opts).align(heavy_batch).results);
  EXPECT_EQ(drain_session(service, light).results,
            Aligner(opts).align(light_batch).results);
  (void)blocker;
}

TEST(AlignService, HigherPriorityClassAlwaysBatchesFirst) {
  AlignerOptions opts;  // CPU
  ServiceOptions svc;
  svc.batch_pairs = 16;
  svc.max_inflight_batches = 1;
  AlignService service(opts, svc);
  submit_blocker(service, svc.batch_pairs);

  constexpr std::size_t kN = 192;
  SessionOptions urgent_opts;
  urgent_opts.priority = 1;
  SessionId urgent = service.open(urgent_opts);
  SessionId background = service.open();  // priority 0, same weight
  auto urgent_batch = saloba::testing::related_batch(993, kN, 500, 500);
  auto background_batch = saloba::testing::related_batch(994, kN, 500, 500);
  ASSERT_TRUE(service.submit(urgent, urgent_batch));
  ASSERT_TRUE(service.submit(background, background_batch));
  service.finish(urgent);
  service.finish(background);

  // Strict classes: while the urgent backlog exists, merged batches carry
  // no background pairs (bar the final partial batch topped up after the
  // urgent queue drained). Equal priority would interleave ~kN/2.
  Drained got = drain_session(service, urgent);
  auto bg_now = service.session_stats(background);
  EXPECT_LE(bg_now.completed_pairs, 4 * svc.batch_pairs);
  EXPECT_GT(bg_now.queued_pairs + bg_now.inflight_pairs, 0u);

  EXPECT_EQ(got.results, Aligner(opts).align(urgent_batch).results);
  EXPECT_EQ(drain_session(service, background).results,
            Aligner(opts).align(background_batch).results);
}

TEST(AlignService, AdmissionCapBoundsQueueAndBlocksProducer) {
  AlignerOptions opts;  // CPU
  ServiceOptions svc;
  svc.batch_pairs = 8;
  AlignService service(opts, svc);
  SessionOptions sopts;
  sopts.max_queued_pairs = 16;  // tight per-session cap
  SessionId id = service.open(sopts);

  auto batch = saloba::testing::related_batch(995, 200, 60, 80);
  auto expected = Aligner(opts).align(batch);
  std::thread producer([&] {
    ASSERT_TRUE(service.submit(id, batch));  // blocks at the cap repeatedly
    service.finish(id);
  });
  Drained got = drain_session(service, id);
  producer.join();

  EXPECT_EQ(got.results, expected.results);
  auto stats = service.session_stats(id);
  EXPECT_EQ(stats.completed_pairs, batch.size());
  // The whole point: 200 pairs flowed through, but never more than the cap
  // were admitted-and-waiting at once.
  EXPECT_LE(stats.peak_queued_pairs, 16u);
}

TEST(AlignService, CancelFreesQueuedWorkWithoutStallingOtherTenants) {
  AlignerOptions opts;  // CPU
  ServiceOptions svc;
  svc.batch_pairs = 16;
  svc.max_inflight_batches = 1;
  AlignService service(opts, svc);
  SessionId blocker = submit_blocker(service, svc.batch_pairs);

  // Victim: a small admission cap and a big backlog, so its producer is
  // parked mid-submit while the worker is still busy with the blocker.
  SessionOptions victim_opts;
  victim_opts.max_queued_pairs = 32;
  SessionId victim = service.open(victim_opts);
  std::atomic<bool> victim_submit_result{true};
  std::thread victim_producer([&] {
    victim_submit_result =
        service.submit(victim, saloba::testing::related_batch(996, 128, 80, 100));
  });
  SessionId survivor = service.open();
  auto survivor_batch = saloba::testing::related_batch(997, 48, 80, 100);
  ASSERT_TRUE(service.submit(survivor, survivor_batch));
  service.finish(survivor);

  // Give the victim producer time to hit its cap, then cancel: the blocked
  // submit must return false, queued work is freed, and the survivor's
  // stream completes untouched.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.cancel(victim);
  victim_producer.join();
  EXPECT_FALSE(victim_submit_result.load());
  EXPECT_FALSE(service.poll(victim).has_value());  // no results, no block

  EXPECT_EQ(drain_session(service, survivor).results,
            Aligner(opts).align(survivor_batch).results);
  auto vstats = service.session_stats(victim);
  EXPECT_TRUE(vstats.cancelled);
  EXPECT_GT(vstats.cancelled_pairs, 0u);
  EXPECT_EQ(vstats.queued_pairs, 0u);
  service.cancel(victim);  // idempotent
  // The blocker tenant is untouched by the cancellation too.
  drain_session(service, blocker);
  EXPECT_EQ(service.session_stats(blocker).completed_pairs, 3 * svc.batch_pairs);
}

TEST(AlignService, StopUnblocksProducersAndPollers) {
  AlignerOptions opts;  // CPU
  ServiceOptions svc;
  svc.batch_pairs = 16;
  svc.max_inflight_batches = 1;
  AlignService service(opts, svc);
  submit_blocker(service, svc.batch_pairs);

  SessionOptions sopts;
  sopts.max_queued_pairs = 8;
  SessionId id = service.open(sopts);
  std::atomic<bool> submit_result{true};
  std::thread producer([&] {
    submit_result = service.submit(id, saloba::testing::related_batch(998, 100, 80, 100));
  });
  SessionId idle = service.open();  // never finished: poll would block forever
  std::atomic<bool> poll_result{true};
  std::thread poller([&] { poll_result = service.poll(idle).has_value(); });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.stop();  // must wake both; destructor would do the same
  producer.join();
  poller.join();
  EXPECT_FALSE(submit_result.load());
  EXPECT_FALSE(poll_result.load());
}

TEST(AlignServiceDeath, SubmitAfterFinishIsRejected) {
  EXPECT_DEATH(
      {
        AlignService service(AlignerOptions{});
        SessionId id = service.open();
        service.finish(id);
        service.submit(id, saloba::testing::related_batch(999, 2, 20, 20));
      },
      "submit\\(\\) after finish\\(\\)");
}

TEST(AlignService, UnknownSessionThrows) {
  AlignService service(AlignerOptions{});
  EXPECT_THROW(service.session_stats(77), std::invalid_argument);
  EXPECT_THROW(service.poll(77), std::invalid_argument);
  EXPECT_THROW(service.submit(77, seq::PairBatch{}), std::invalid_argument);
}

}  // namespace
}  // namespace saloba::core
