#include "core/aligner.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"

namespace saloba::core {
namespace {

TEST(Aligner, CpuBackendAligns) {
  Aligner aligner(AlignerOptions{});
  auto batch = saloba::testing::related_batch(161, 30, 100, 150);
  auto out = aligner.align(batch);
  ASSERT_EQ(out.results.size(), 30u);
  EXPECT_GT(out.time_ms, 0.0);
  EXPECT_EQ(out.cells, batch.total_cells());
  EXPECT_FALSE(out.kernel_stats.has_value());
}

TEST(Aligner, SimulatedBackendMatchesCpu) {
  AlignerOptions cpu_opts;
  Aligner cpu(cpu_opts);
  AlignerOptions sim_opts;
  sim_opts.backend = Backend::kSimulated;
  sim_opts.kernel = "saloba";
  sim_opts.device = "rtx3090";
  Aligner sim(sim_opts);

  auto batch = saloba::testing::imbalanced_batch(162, 25, 20, 300);
  auto cpu_out = cpu.align(batch);
  auto sim_out = sim.align(batch);
  EXPECT_EQ(cpu_out.results, sim_out.results);
  EXPECT_TRUE(sim_out.kernel_stats.has_value());
  EXPECT_TRUE(sim_out.time_breakdown.has_value());
  EXPECT_GT(sim_out.time_ms, 0.0);
}

TEST(Aligner, AllRegisteredKernelsWorkThroughFacade) {
  auto batch = saloba::testing::related_batch(163, 10, 120, 160);
  Aligner cpu{AlignerOptions{}};
  auto expected = cpu.align(batch).results;
  for (const char* kernel : {"gasal2", "nvbio", "adept", "sw#", "saloba-sw16"}) {
    AlignerOptions opts;
    opts.backend = Backend::kSimulated;
    opts.kernel = kernel;
    opts.device = "gtx1650";
    Aligner sim(opts);
    EXPECT_EQ(sim.align(batch).results, expected) << kernel;
  }
}

TEST(Aligner, DeviceByNameResolvesPresets) {
  EXPECT_EQ(Aligner::device_by_name("gtx1650").name, "GTX1650");
  EXPECT_EQ(Aligner::device_by_name("RTX3090").name, "RTX3090");
  EXPECT_EQ(Aligner::device_by_name("p100").name, "P100");
  EXPECT_EQ(Aligner::device_by_name("v100").name, "V100");
  EXPECT_THROW(Aligner::device_by_name("tpu"), std::invalid_argument);
}

TEST(Aligner, UnknownDeviceMessageListsPresets) {
  try {
    Aligner::device_by_name("tpu");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    for (const char* name : {"gtx1650", "rtx3090", "p100", "v100"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << " missing from: " << msg;
    }
  }
}

TEST(Aligner, MultiDeviceShardingKeepsResultsAndCutsWallTime) {
  auto batch = saloba::testing::imbalanced_batch(166, 40, 100, 1500);
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba-sw16";
  opts.device = "rtx3090";
  auto single = Aligner(opts).align(batch);
  opts.devices = 2;
  auto dual = Aligner(opts).align(batch);
  EXPECT_EQ(single.results, dual.results);
  EXPECT_LT(dual.time_ms, single.time_ms);
  EXPECT_EQ(dual.schedule.lanes, 2);
}

TEST(Aligner, GcupsComputedFromMergedOutputOnBothBackends) {
  auto batch = saloba::testing::related_batch(167, 20, 150, 200);
  for (Backend backend : {Backend::kCpu, Backend::kSimulated}) {
    AlignerOptions opts;
    opts.backend = backend;
    auto out = Aligner(opts).align(batch);
    ASSERT_GT(out.time_ms, 0.0);
    EXPECT_DOUBLE_EQ(out.gcups, static_cast<double>(out.cells) / (out.time_ms * 1e6));
  }
}

TEST(Aligner, BatchExtenderRoutesThroughScheduler) {
  auto batch = saloba::testing::related_batch(168, 15, 100, 130);
  Aligner cpu{AlignerOptions{}};
  auto extender = cpu.batch_extender();
  EXPECT_EQ(extender(batch), cpu.align(batch).results);
}

TEST(Aligner, GcupsReported) {
  Aligner aligner{AlignerOptions{}};
  auto batch = saloba::testing::related_batch(164, 40, 200, 200);
  auto out = aligner.align(batch);
  EXPECT_GT(out.gcups, 0.0);
}

TEST(Aligner, MoveSemantics) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  Aligner a(opts);
  Aligner b = std::move(a);
  auto batch = saloba::testing::related_batch(165, 5, 50, 50);
  EXPECT_EQ(b.align(batch).results.size(), 5u);
}

}  // namespace
}  // namespace saloba::core
