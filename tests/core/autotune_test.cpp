#include "core/autotune.hpp"

#include <gtest/gtest.h>

namespace saloba::core {
namespace {

DatasetStats stats_with(double mean_q, double cv_q) {
  DatasetStats s;
  s.mean_query_len = mean_q;
  s.cv_query_len = cv_q;
  return s;
}

TEST(Autotune, ShortBalancedWorkloadsGetSmallSubwarps) {
  EXPECT_EQ(recommend_subwarp_size(stats_with(120, 0.4)), 8);
  EXPECT_EQ(recommend_subwarp_size(stats_with(250, 0.9)), 8);
}

TEST(Autotune, ShortButWildlyImbalancedGetsMid) {
  EXPECT_EQ(recommend_subwarp_size(stats_with(150, 2.0)), 16);
}

TEST(Autotune, LongReadsGetWiderSubwarps) {
  EXPECT_EQ(recommend_subwarp_size(stats_with(800, 0.6)), 16);
  EXPECT_EQ(recommend_subwarp_size(stats_with(2000, 1.3)), 32);
}

TEST(Autotune, ConfigAlwaysLazySpills) {
  auto cfg = recommend_config(stats_with(700, 1.2));
  EXPECT_TRUE(cfg.lazy_spill);
  EXPECT_EQ(cfg.subwarp_size, 32);
}

DatasetStats sched_stats(std::size_t jobs, double cv_q, double cv_r = 0.0) {
  DatasetStats s;
  s.jobs = jobs;
  s.cv_query_len = cv_q;
  s.cv_ref_len = cv_r;
  return s;
}

TEST(AutotuneScheduler, BalancedSingleLaneKeepsSingleLaunchFastPath) {
  auto opts = recommend_scheduler(sched_stats(10000, 0.1), 1);
  EXPECT_EQ(opts.max_shard_pairs, 0u);
  EXPECT_EQ(opts.policy, gpusim::SplitPolicy::kStatic);
}

TEST(AutotuneScheduler, BalancedMultiLaneKeepsOneShardPerLane) {
  auto opts = recommend_scheduler(sched_stats(10000, 0.2), 4);
  EXPECT_EQ(opts.max_shard_pairs, 0u);
  EXPECT_EQ(opts.policy, gpusim::SplitPolicy::kSorted);
}

TEST(AutotuneScheduler, SkewedWorkloadGetsSortedShardCap) {
  // ~4 shards per lane: 10000 jobs over 2 lanes → cap of 1250 pairs.
  auto opts = recommend_scheduler(sched_stats(10000, 1.2), 2);
  EXPECT_EQ(opts.policy, gpusim::SplitPolicy::kSorted);
  EXPECT_EQ(opts.max_shard_pairs, 1250u);
}

TEST(AutotuneScheduler, RefSkewAloneTriggersSharding) {
  auto opts = recommend_scheduler(sched_stats(800, 0.1, 1.5), 1);
  EXPECT_EQ(opts.max_shard_pairs, 200u);
}

TEST(AutotuneScheduler, TinyOrEmptyWorkloadsKeepDefaults) {
  // Too few jobs to fill 4 shards per lane: no cap. Empty: defaults.
  EXPECT_EQ(recommend_scheduler(sched_stats(6, 2.0), 2).max_shard_pairs, 0u);
  auto empty = recommend_scheduler(sched_stats(0, 0.0), 3);
  EXPECT_EQ(empty.max_shard_pairs, 0u);
  EXPECT_EQ(empty.policy, gpusim::SplitPolicy::kSorted);
}

TEST(AutotuneScheduler, UniformLaneWeightsDeferToLaneCountOverload) {
  auto stats = sched_stats(10000, 0.1);
  auto by_count = recommend_scheduler(stats, 4);
  auto by_weights = recommend_scheduler(stats, std::vector<double>{2.0, 2.0, 2.0, 2.0});
  EXPECT_EQ(by_weights.max_shard_pairs, by_count.max_shard_pairs);
  EXPECT_EQ(by_weights.policy, by_count.policy);
}

TEST(AutotuneScheduler, SkewedLaneWeightsRaiseShardBudget) {
  // Uniform lengths would keep one shard per lane, but a 6x lane-speed skew
  // needs ~8 shards per lane so the weighted LPT can feed the fast lane.
  auto opts = recommend_scheduler(sched_stats(10000, 0.1), std::vector<double>{1.0, 6.0});
  EXPECT_EQ(opts.policy, gpusim::SplitPolicy::kSorted);
  EXPECT_EQ(opts.max_shard_pairs, 625u);  // ceil(10000 / (2 lanes * 8))
}

TEST(AutotuneScheduler, LengthAndWeightSkewTakeTheTighterCap) {
  // Length skew alone: 10000/(2*4) = 1250. Weight skew: 10000/(2*8) = 625.
  auto opts = recommend_scheduler(sched_stats(10000, 1.2), std::vector<double>{1.0, 6.0});
  EXPECT_EQ(opts.max_shard_pairs, 625u);
}

TEST(AutotuneScheduler, TinyMixedWorkloadsKeepPerPairWeightedDeal) {
  // Too few jobs for a cap: the weighted make_shards' per-pair greedy deal
  // (cap 0) already balances by weight.
  auto opts = recommend_scheduler(sched_stats(6, 0.1), std::vector<double>{1.0, 6.0});
  EXPECT_EQ(opts.max_shard_pairs, 0u);
  EXPECT_EQ(opts.policy, gpusim::SplitPolicy::kSorted);
}

TEST(AutotuneScheduler, StatsOfComputesChunkStats) {
  seq::PairBatch batch;
  batch.add(std::vector<seq::BaseCode>(100, 0), std::vector<seq::BaseCode>(200, 1));
  batch.add(std::vector<seq::BaseCode>(300, 2), std::vector<seq::BaseCode>(400, 3));
  auto stats = stats_of(batch);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_query_len, 200.0);
  EXPECT_DOUBLE_EQ(stats.mean_ref_len, 300.0);
  EXPECT_EQ(stats.max_query_len, 300u);
  EXPECT_EQ(stats.max_ref_len, 400u);
  EXPECT_GT(stats.cv_query_len, 0.0);

  auto empty = stats_of(seq::PairBatch{});  // degenerate guard: no NaNs
  EXPECT_EQ(empty.jobs, 0u);
  EXPECT_FALSE(empty.mean_query_len != empty.mean_query_len);
  EXPECT_DOUBLE_EQ(empty.cv_query_len, 0.0);
}

TEST(Autotune, RealDatasetStatsLandSensibly) {
  // Mirrors the regimes of datasets A' and B' (fig8 harness output).
  auto a = stats_with(90, 1.2);   // short reads, moderate imbalance
  auto b = stats_with(734, 1.19); // long reads, heavy imbalance
  EXPECT_LE(recommend_subwarp_size(a), 16);
  EXPECT_GE(recommend_subwarp_size(b), 16);
}

}  // namespace
}  // namespace saloba::core
