#include "core/autotune.hpp"

#include <gtest/gtest.h>

namespace saloba::core {
namespace {

DatasetStats stats_with(double mean_q, double cv_q) {
  DatasetStats s;
  s.mean_query_len = mean_q;
  s.cv_query_len = cv_q;
  return s;
}

TEST(Autotune, ShortBalancedWorkloadsGetSmallSubwarps) {
  EXPECT_EQ(recommend_subwarp_size(stats_with(120, 0.4)), 8);
  EXPECT_EQ(recommend_subwarp_size(stats_with(250, 0.9)), 8);
}

TEST(Autotune, ShortButWildlyImbalancedGetsMid) {
  EXPECT_EQ(recommend_subwarp_size(stats_with(150, 2.0)), 16);
}

TEST(Autotune, LongReadsGetWiderSubwarps) {
  EXPECT_EQ(recommend_subwarp_size(stats_with(800, 0.6)), 16);
  EXPECT_EQ(recommend_subwarp_size(stats_with(2000, 1.3)), 32);
}

TEST(Autotune, ConfigAlwaysLazySpills) {
  auto cfg = recommend_config(stats_with(700, 1.2));
  EXPECT_TRUE(cfg.lazy_spill);
  EXPECT_EQ(cfg.subwarp_size, 32);
}

TEST(Autotune, RealDatasetStatsLandSensibly) {
  // Mirrors the regimes of datasets A' and B' (fig8 harness output).
  auto a = stats_with(90, 1.2);   // short reads, moderate imbalance
  auto b = stats_with(734, 1.19); // long reads, heavy imbalance
  EXPECT_LE(recommend_subwarp_size(a), 16);
  EXPECT_GE(recommend_subwarp_size(b), 16);
}

}  // namespace
}  // namespace saloba::core
