// End-to-end autotuning: the recommended configuration must actually win
// (or tie) against the default on the workload class it was tuned for.
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "core/workload.hpp"
#include "gpusim/multi_device.hpp"
#include "kernels/saloba_kernel.hpp"

namespace saloba::core {
namespace {

double run_with(const kernels::SalobaConfig& cfg, const seq::PairBatch& batch) {
  gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
  return kernels::make_saloba(cfg)->run(dev, batch, align::ScoringScheme{}).time.total_ms;
}

class AutotuneE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome_ = new std::vector<seq::BaseCode>(make_genome(1 << 20, 99));
  }
  static void TearDownTestSuite() {
    delete genome_;
    genome_ = nullptr;
  }
  static std::vector<seq::BaseCode>* genome_;
};
std::vector<seq::BaseCode>* AutotuneE2E::genome_ = nullptr;

TEST_F(AutotuneE2E, RecommendationBeatsWorstConfigOnLongImbalanced) {
  auto ds = make_dataset_b(*genome_, 40, 7);
  auto cfg = recommend_config(ds.stats);
  kernels::SalobaConfig worst;
  worst.subwarp_size = cfg.subwarp_size == 8 ? 32 : 8;
  EXPECT_LT(run_with(cfg, ds.batch), run_with(worst, ds.batch));
}

TEST_F(AutotuneE2E, RecommendationCompetitiveOnShortReads) {
  auto ds = make_dataset_a(*genome_, 150, 8);
  auto cfg = recommend_config(ds.stats);
  double tuned = run_with(cfg, ds.batch);
  double best = tuned;
  for (int sw : {8, 16, 32}) {
    kernels::SalobaConfig c;
    c.subwarp_size = sw;
    best = std::min(best, run_with(c, ds.batch));
  }
  // Within 25% of the best exhaustive choice.
  EXPECT_LE(tuned, best * 1.25);
}

TEST_F(AutotuneE2E, MultiDeviceSortedSplitHelpsOnDatasetB) {
  // Sec. VII-C through the library API: sorted split's makespan is no worse
  // than static on the imbalanced dataset.
  auto ds = make_dataset_b(*genome_, 30, 9);
  auto cfg = recommend_config(ds.stats);
  auto runner = [&](const seq::PairBatch& shard) { return run_with(cfg, shard); };
  auto statik =
      gpusim::dispatch_shards(ds.batch, 3, gpusim::SplitPolicy::kStatic, runner);
  auto sorted =
      gpusim::dispatch_shards(ds.batch, 3, gpusim::SplitPolicy::kSorted, runner);
  EXPECT_LE(sorted.makespan_ms, statik.makespan_ms * 1.05);
  EXPECT_GT(sorted.makespan_ms, 0.0);
}

}  // namespace
}  // namespace saloba::core
