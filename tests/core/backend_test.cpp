// AlignBackend implementations: lane bookkeeping, CPU/simulated parity,
// and registry-backed construction errors.
#include "core/backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "../support/test_support.hpp"
#include "align/batch.hpp"
#include "core/aligner.hpp"
#include "gpusim/device_registry.hpp"

namespace saloba::core {
namespace {

TEST(CpuBackend, RunsBatchOnSingleLane) {
  CpuBackend backend{align::ScoringScheme{}};
  EXPECT_EQ(backend.lanes(), 1);
  auto batch = saloba::testing::related_batch(701, 12, 90, 120);
  auto out = backend.run(batch, 0);
  EXPECT_EQ(out.results, align::align_batch(batch, align::ScoringScheme{}));
  EXPECT_FALSE(out.kernel_stats.has_value());
  EXPECT_GT(out.time_ms, 0.0);
}

TEST(CpuBackend, MultiLaneSplitsThreadBudget) {
  // 3 lanes over a 6-thread budget: 2 OpenMP threads per lane, every lane
  // produces the same results as the single-lane reference.
  CpuBackend backend{align::ScoringScheme{}, 3, 6};
  EXPECT_EQ(backend.lanes(), 3);
  EXPECT_EQ(backend.threads_per_lane(), 2);
  auto batch = saloba::testing::related_batch(705, 10, 70, 90);
  auto expected = align::align_batch(batch, align::ScoringScheme{});
  for (int lane = 0; lane < backend.lanes(); ++lane) {
    EXPECT_EQ(backend.run(batch, lane).results, expected) << "lane " << lane;
  }
}

TEST(CpuBackend, MultiLaneBudgetNeverRoundsToZero) {
  // More lanes than budgeted threads: each lane still gets one thread.
  CpuBackend backend{align::ScoringScheme{}, 4, 2};
  EXPECT_EQ(backend.threads_per_lane(), 1);
}

TEST(CpuBackend, SchedulerOverlapsMultiLaneCpuShards) {
  // The ROADMAP item: with lanes > 1 the scheduler spreads shards over CPU
  // lanes concurrently, results stay bit-identical and lane accounting
  // covers every lane.
  auto batch = saloba::testing::imbalanced_batch(706, 30, 30, 300);
  AlignerOptions opts;  // CPU backend
  auto expected = Aligner(opts).align(batch);

  AlignerOptions multi = opts;
  multi.cpu_lanes = 2;
  multi.cpu_threads = 2;
  auto out = Aligner(multi).align(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.schedule.lanes, 2);
  ASSERT_EQ(out.schedule.lane_ms.size(), 2u);
  EXPECT_GT(out.schedule.lane_ms[0], 0.0);
  EXPECT_GT(out.schedule.lane_ms[1], 0.0);
  EXPECT_EQ(out.schedule.shards, 2u);  // one shard per lane by default
}

TEST(SimulatedGpuBackend, LanesOwnIndependentDevices) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "gtx1650";
  opts.devices = 3;
  SimulatedGpuBackend backend(opts);
  EXPECT_EQ(backend.lanes(), 3);

  auto batch = saloba::testing::related_batch(702, 8, 100, 140);
  auto expected = align::align_batch(batch, align::ScoringScheme{});
  for (int lane = 0; lane < backend.lanes(); ++lane) {
    auto out = backend.run(batch, lane);
    EXPECT_EQ(out.results, expected) << "lane " << lane;
    ASSERT_TRUE(out.kernel_stats.has_value());
    EXPECT_GT(out.time_ms, 0.0);
  }
}

TEST(SimulatedGpuBackend, UnknownKernelThrowsListingValidNames) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "not-a-kernel";
  try {
    SimulatedGpuBackend backend(opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("not-a-kernel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("saloba"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gasal2"), std::string::npos) << msg;
  }
}

TEST(SimulatedGpuBackend, UnknownDeviceThrowsListingValidNames) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "tpu";
  try {
    SimulatedGpuBackend backend(opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("tpu"), std::string::npos) << msg;
    for (const auto& name : gpusim::device_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << " missing from: " << msg;
    }
  }
}

TEST(CpuBackend, LaneWeightsAreUniform) {
  CpuBackend single{align::ScoringScheme{}};
  EXPECT_DOUBLE_EQ(single.lane_weight(0), 1.0);
  CpuBackend multi{align::ScoringScheme{}, 3, 6};
  EXPECT_DOUBLE_EQ(multi.lane_weight(0), 2.0);  // threads_per_lane
  EXPECT_DOUBLE_EQ(multi.lane_weight(1), multi.lane_weight(0));
  EXPECT_DOUBLE_EQ(multi.lane_weight(2), multi.lane_weight(0));
}

TEST(SimulatedGpuBackend, MixedPresetsBuildOneWeightedLanePerPreset) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "gtx1650, rtx3090";  // whitespace around commas tolerated
  SimulatedGpuBackend backend(opts);
  EXPECT_EQ(backend.lanes(), 2);
  EXPECT_EQ(backend.device(0).spec().name, "GTX1650");
  EXPECT_EQ(backend.device(1).spec().name, "RTX3090");
  // Weights are relative throughput, slowest lane pinned at 1.
  EXPECT_DOUBLE_EQ(backend.lane_weight(0), 1.0);
  EXPECT_GT(backend.lane_weight(1), 2.0);
  EXPECT_NE(backend.name().find("GTX1650+RTX3090"), std::string::npos) << backend.name();

  auto weights = lane_weights(backend);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[1], backend.lane_weight(1));

  // Every lane still computes identical results — heterogeneity is a cost
  // property, never a functional one.
  auto batch = saloba::testing::related_batch(707, 6, 80, 110);
  auto expected = align::align_batch(batch, align::ScoringScheme{});
  for (int lane = 0; lane < backend.lanes(); ++lane) {
    EXPECT_EQ(backend.run(batch, lane).results, expected) << "lane " << lane;
  }
}

TEST(SimulatedGpuBackend, SinglePresetKeepsUniformWeightsAcrossReplicas) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "gtx1650";
  opts.devices = 3;
  SimulatedGpuBackend backend(opts);
  for (int lane = 0; lane < backend.lanes(); ++lane) {
    EXPECT_DOUBLE_EQ(backend.lane_weight(lane), 1.0) << "lane " << lane;
  }
}

TEST(SimulatedGpuBackend, UnknownPresetInListThrowsListingValidNames) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "gtx1650,tpu";
  try {
    SimulatedGpuBackend backend(opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("tpu"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rtx3090"), std::string::npos) << msg;
  }
}

TEST(SimulatedGpuBackend, EmptyPresetListElementThrows) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "gtx1650,,rtx3090";
  EXPECT_THROW(SimulatedGpuBackend{opts}, std::invalid_argument);
  opts.device = "";
  EXPECT_THROW(SimulatedGpuBackend{opts}, std::invalid_argument);
}

TEST(DevicePresetList, SplitsAndTrims) {
  EXPECT_EQ(device_preset_list("rtx3090"), (std::vector<std::string>{"rtx3090"}));
  EXPECT_EQ(device_preset_list(" gtx1650 , rtx3090 "),
            (std::vector<std::string>{"gtx1650", "rtx3090"}));
  EXPECT_THROW(device_preset_list(","), std::invalid_argument);
}

TEST(SimulatedGpuBackendDeath, MixedPresetsRejectConflictingDeviceCount) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "gtx1650,rtx3090";
  opts.devices = 3;  // neither 1 nor the list length
  EXPECT_DEATH(SimulatedGpuBackend{opts}, "conflicts");
}

TEST(MakeBackend, DispatchesOnOptions) {
  AlignerOptions cpu;
  EXPECT_EQ(make_backend(cpu)->name(), "cpu");
  AlignerOptions sim;
  sim.backend = Backend::kSimulated;
  auto backend = make_backend(sim);
  EXPECT_EQ(backend->name().find("sim:"), 0u) << backend->name();
}

}  // namespace
}  // namespace saloba::core
