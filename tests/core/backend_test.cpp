// AlignBackend implementations: lane bookkeeping, CPU/simulated parity,
// and registry-backed construction errors.
#include "core/backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "../support/test_support.hpp"
#include "align/batch.hpp"
#include "gpusim/device_registry.hpp"

namespace saloba::core {
namespace {

TEST(CpuBackend, RunsBatchOnSingleLane) {
  CpuBackend backend{align::ScoringScheme{}};
  EXPECT_EQ(backend.lanes(), 1);
  auto batch = saloba::testing::related_batch(701, 12, 90, 120);
  auto out = backend.run(batch, 0);
  EXPECT_EQ(out.results, align::align_batch(batch, align::ScoringScheme{}));
  EXPECT_FALSE(out.kernel_stats.has_value());
  EXPECT_GT(out.time_ms, 0.0);
}

TEST(SimulatedGpuBackend, LanesOwnIndependentDevices) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "gtx1650";
  opts.devices = 3;
  SimulatedGpuBackend backend(opts);
  EXPECT_EQ(backend.lanes(), 3);

  auto batch = saloba::testing::related_batch(702, 8, 100, 140);
  auto expected = align::align_batch(batch, align::ScoringScheme{});
  for (int lane = 0; lane < backend.lanes(); ++lane) {
    auto out = backend.run(batch, lane);
    EXPECT_EQ(out.results, expected) << "lane " << lane;
    ASSERT_TRUE(out.kernel_stats.has_value());
    EXPECT_GT(out.time_ms, 0.0);
  }
}

TEST(SimulatedGpuBackend, UnknownKernelThrowsListingValidNames) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "not-a-kernel";
  try {
    SimulatedGpuBackend backend(opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("not-a-kernel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("saloba"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gasal2"), std::string::npos) << msg;
  }
}

TEST(SimulatedGpuBackend, UnknownDeviceThrowsListingValidNames) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "tpu";
  try {
    SimulatedGpuBackend backend(opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("tpu"), std::string::npos) << msg;
    for (const auto& name : gpusim::device_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << " missing from: " << msg;
    }
  }
}

TEST(MakeBackend, DispatchesOnOptions) {
  AlignerOptions cpu;
  EXPECT_EQ(make_backend(cpu)->name(), "cpu");
  AlignerOptions sim;
  sim.backend = Backend::kSimulated;
  auto backend = make_backend(sim);
  EXPECT_EQ(backend->name().find("sim:"), 0u) << backend->name();
}

}  // namespace
}  // namespace saloba::core
