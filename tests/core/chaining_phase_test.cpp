// The chaining phase as a scheduler/backend concern: identical chains across
// backends, lane counts, and shard caps; modeled phase cost on simulated
// devices (TimeBreakdown::chaining_ms + KernelStats counters); and the
// Aligner::batch_chainer → ReadMapper::set_batch_chainer end-to-end wiring.
#include <gtest/gtest.h>

#include <random>

#include "core/aligner.hpp"
#include "core/backend.hpp"
#include "core/scheduler.hpp"
#include "seedext/chain_batch.hpp"
#include "seedext/chaining.hpp"
#include "seedext/pipeline.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"

namespace saloba::core {
namespace {

seedext::ChainBatch test_chain_batch(std::uint64_t seed, std::size_t tasks,
                                     const seedext::ChainingParams& params = {}) {
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_int_distribution<int> ndist(0, 200);
  std::uniform_int_distribution<std::uint32_t> qdist(0, 2200);
  std::uniform_int_distribution<std::uint32_t> ddist(0, 250);
  std::uniform_int_distribution<std::uint32_t> ldist(1, 30);
  seedext::ChainBatch batch(params);
  for (std::size_t t = 0; t < tasks; ++t) {
    std::vector<seedext::Seed> seeds;
    const int n = ndist(rng);
    seeds.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::uint32_t qpos = qdist(rng);
      seeds.push_back(seedext::Seed{qpos, 30000 + qpos + ddist(rng), ldist(rng)});
    }
    batch.add_task(std::move(seeds));
  }
  return batch;
}

std::vector<std::vector<seedext::Chain>> oracle_chains(const seedext::ChainBatch& batch) {
  std::vector<std::vector<seedext::Chain>> out(batch.tasks());
  for (std::size_t t = 0; t < batch.tasks(); ++t) {
    out[t] = seedext::chain_seeds(batch.task_seeds(t), batch.params());
  }
  return out;
}

TEST(ChainingPhase, CpuSingleLaneMatchesOracle) {
  auto batch = test_chain_batch(11, 40);
  AlignerOptions opts;  // CPU backend, one lane
  auto backend = make_backend(opts);
  BatchScheduler sched(backend.get());
  auto out = sched.chain(batch);
  EXPECT_EQ(out.chains, oracle_chains(batch));
  EXPECT_EQ(out.anchors, batch.anchors());
  EXPECT_EQ(out.schedule.shards, 1u);
  EXPECT_GT(out.updates, 0u);
}

TEST(ChainingPhase, ShardedMultiLaneMatchesSingleLane) {
  auto batch = test_chain_batch(12, 55);
  auto expected = oracle_chains(batch);

  // CPU, three lanes, capped shards.
  AlignerOptions cpu;
  cpu.cpu_lanes = 3;
  auto cpu_backend = make_backend(cpu);
  SchedulerOptions sched_opts;
  sched_opts.max_shard_chain_tasks = 7;
  BatchScheduler cpu_sched(cpu_backend.get(), sched_opts);
  auto cpu_out = cpu_sched.chain(batch);
  EXPECT_EQ(cpu_out.chains, expected);
  EXPECT_GT(cpu_out.schedule.shards, 1u);
  EXPECT_EQ(cpu_out.schedule.lanes, 3);

  // Simulated, two devices, different cap — still the same chains.
  AlignerOptions sim;
  sim.backend = Backend::kSimulated;
  sim.devices = 2;
  auto sim_backend = make_backend(sim);
  SchedulerOptions sim_opts;
  sim_opts.max_shard_chain_tasks = 5;
  BatchScheduler sim_sched(sim_backend.get(), sim_opts);
  auto sim_out = sim_sched.chain(batch);
  EXPECT_EQ(sim_out.chains, expected);

  // Structural counters agree across executions.
  EXPECT_EQ(cpu_out.updates, sim_out.updates);
  EXPECT_EQ(cpu_out.anchors, sim_out.anchors);
}

TEST(ChainingPhase, SimulatedBackendModelsPhaseCost) {
  auto batch = test_chain_batch(13, 20);
  AlignerOptions sim;
  sim.backend = Backend::kSimulated;
  auto backend = make_backend(sim);
  BatchScheduler sched(backend.get());
  auto out = sched.chain(batch);

  EXPECT_EQ(out.chains, oracle_chains(batch));
  // Modeled, not measured: the phase time comes from the chaining cost
  // model and lands in the breakdown + kernel counters.
  ASSERT_TRUE(out.time_breakdown.has_value());
  EXPECT_GT(out.time_breakdown->chaining_ms, 0.0);
  EXPECT_GT(out.time_ms, 0.0);
  ASSERT_TRUE(out.kernel_stats.has_value());
  EXPECT_EQ(out.kernel_stats->totals.chaining_updates, out.updates);
  EXPECT_GT(out.kernel_stats->totals.chaining_bytes, 0u);
}

TEST(ChainingPhase, EmptyBatchIsANoOp) {
  seedext::ChainBatch batch;
  AlignerOptions opts;
  auto backend = make_backend(opts);
  BatchScheduler sched(backend.get());
  auto out = sched.chain(batch);
  EXPECT_TRUE(out.chains.empty());
  EXPECT_EQ(out.anchors, 0u);
  EXPECT_DOUBLE_EQ(out.time_ms, 0.0);
}

TEST(ChainingPhase, MapperWithInjectedChainerMatchesDefault) {
  // End-to-end: routing the mapper's chaining stage through the scheduler
  // phase must not change a single mapping.
  seq::GenomeParams gp;
  gp.length = 120000;
  gp.n_fraction = 0.0;
  gp.seed = 99;
  auto genome = seq::generate_genome(gp);
  seq::ReadProfile profile = seq::ReadProfile::equal_length(140);
  seq::ReadSimulator sim(genome, profile, 17);
  std::vector<std::vector<seq::BaseCode>> reads;
  for (const auto& r : sim.simulate(30)) reads.push_back(r.read.bases);

  seedext::ReadMapper plain(genome, seedext::MapperParams{});
  Aligner extender(AlignerOptions{});
  auto extend = extender.batch_extender();
  auto want = plain.map_batch(reads, extend);

  AlignerOptions chain_opts;
  chain_opts.cpu_lanes = 2;
  chain_opts.max_shard_chain_tasks = 8;
  Aligner chain_aligner(chain_opts);
  seedext::ReadMapper routed(genome, seedext::MapperParams{});
  routed.set_batch_chainer(chain_aligner.batch_chainer());
  seedext::ChainStageStats stats;
  auto got = routed.map_batch(reads, extend, &stats);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].mapped, want[i].mapped) << "read " << i;
    EXPECT_EQ(got[i].ref_pos, want[i].ref_pos) << "read " << i;
    EXPECT_EQ(got[i].reverse_strand, want[i].reverse_strand) << "read " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "read " << i;
  }
  // Two tasks per read went through the phase.
  EXPECT_EQ(stats.tasks, reads.size() * 2);
  EXPECT_GT(stats.anchors, 0u);
}

}  // namespace
}  // namespace saloba::core
