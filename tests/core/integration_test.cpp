// End-to-end integration: genome -> simulated reads -> seed-and-extend
// pipeline -> extension jobs -> every kernel agrees with the CPU oracle,
// and the headline performance shapes hold on the simulated devices.
#include <gtest/gtest.h>

#include "align/batch.hpp"
#include "core/aligner.hpp"
#include "core/workload.hpp"
#include "kernels/kernel_iface.hpp"

namespace saloba::core {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome_ = new std::vector<seq::BaseCode>(make_genome(1 << 20));
    dataset_a_ = new DatasetBatch(make_dataset_a(*genome_, 150));
  }
  static void TearDownTestSuite() {
    delete genome_;
    delete dataset_a_;
    genome_ = nullptr;
    dataset_a_ = nullptr;
  }
  static std::vector<seq::BaseCode>* genome_;
  static DatasetBatch* dataset_a_;
};

std::vector<seq::BaseCode>* IntegrationFixture::genome_ = nullptr;
DatasetBatch* IntegrationFixture::dataset_a_ = nullptr;

TEST_F(IntegrationFixture, PipelineJobsAlignIdenticallyOnAllKernels) {
  // Subsample for speed; jobs come straight from the pipeline.
  seq::PairBatch sample;
  for (std::size_t i = 0; i < dataset_a_->batch.size() && sample.size() < 60; i += 3) {
    sample.add(dataset_a_->batch.queries[i], dataset_a_->batch.refs[i]);
  }
  ASSERT_GT(sample.size(), 10u);

  align::ScoringScheme s;
  auto expected = align::align_batch(sample, s);
  for (const char* name : {"gasal2", "cushaw2-gpu", "nvbio", "adept", "sw#", "saloba",
                           "saloba-sw16", "saloba-intra"}) {
    auto kernel = kernels::make_kernel(name);
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = kernel->run(dev, sample, s);
    // 2-bit kernels may differ on N-containing jobs; dataset jobs can
    // contain N only if the genome has N runs — ours has none by default,
    // but cushaw2 is 2-bit: verify exactness anyway since inputs are N-free.
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.results[i], expected[i]) << name << " job " << i;
    }
  }
}

TEST_F(IntegrationFixture, SalobaBeatsGasal2At512OnBothDevices) {
  // The paper's headline (Fig. 6): SALoBa wins at >= 128 bp.
  auto batch = make_fig6_batch(*genome_, 512, 96);
  align::ScoringScheme s;
  for (const char* device : {"gtx1650", "rtx3090"}) {
    gpusim::Device d1(core::Aligner::device_by_name(device));
    auto gasal = kernels::make_kernel("gasal2")->run(d1, batch, s);
    gpusim::Device d2(core::Aligner::device_by_name(device));
    auto saloba = kernels::make_kernel("saloba")->run(d2, batch, s);
    EXPECT_LT(saloba.time.total_ms, gasal.time.total_ms) << device;
  }
}

TEST_F(IntegrationFixture, SalobaWinsBiggerOnImbalancedDataset) {
  // Fig. 8: the speedup on real-world (imbalanced) workloads exceeds the
  // equal-length speedup at a comparable mean length.
  align::ScoringScheme s;
  const auto& ds = dataset_a_->batch;
  gpusim::Device d1(gpusim::DeviceSpec::gtx1650());
  auto gasal = kernels::make_kernel("gasal2")->run(d1, ds, s);
  gpusim::Device d2(gpusim::DeviceSpec::gtx1650());
  auto saloba = kernels::make_kernel("saloba-sw16")->run(d2, ds, s);
  EXPECT_LT(saloba.time.total_ms, gasal.time.total_ms);
}

TEST_F(IntegrationFixture, SimulatedTimesArePositiveAndFinite) {
  auto batch = make_fig6_batch(*genome_, 128, 64);
  align::ScoringScheme s;
  for (const char* name : {"gasal2", "saloba", "adept"}) {
    gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
    auto r = kernels::make_kernel(name)->run(dev, batch, s);
    EXPECT_GT(r.time.total_ms, 0.0) << name;
    EXPECT_TRUE(std::isfinite(r.time.total_ms)) << name;
  }
}

TEST_F(IntegrationFixture, AlignerFacadeRunsDatasetA) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "rtx3090";
  Aligner aligner(opts);
  auto out = aligner.align(dataset_a_->batch);
  EXPECT_EQ(out.results.size(), dataset_a_->batch.size());
  EXPECT_GT(out.gcups, 0.0);
}

}  // namespace
}  // namespace saloba::core
