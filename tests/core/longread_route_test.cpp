// Long-read routing (core::LongReadPolicy → X-drop wavefront engine):
// routed pairs produce exactly the wavefront engine's results on every
// backend and lane shape, short pairs are untouched (bit-identical to a run
// with routing disabled), the two-phase traceback mirrors the routed score
// pass, and the simulated backend attributes the routed phase separately
// (WarpCounters::xdrop_cells/xdrop_bytes, TimeBreakdown::xdrop_ms).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../support/test_support.hpp"
#include "align/traceback.hpp"
#include "align/xdrop_wavefront.hpp"
#include "core/aligner.hpp"
#include "core/backend.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace saloba::core {
namespace {

constexpr std::size_t kThreshold = 600;

/// Short pairs well under the threshold plus a few long ones over it,
/// interleaved, with related (scoring) sequences so routing has real
/// alignments to preserve.
seq::PairBatch mixed_batch(std::uint64_t seed, std::size_t shorts, std::size_t longs) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  const std::size_t total = shorts + longs;
  std::size_t longs_left = longs;
  for (std::size_t p = 0; p < total; ++p) {
    // Interleave: every third slot is long until the quota is spent.
    const bool make_long = longs_left > 0 && (p % 3 == 1 || total - p <= longs_left);
    if (make_long) --longs_left;
    std::size_t rlen = make_long ? kThreshold + 200 + rng.below(300) : 80 + rng.below(120);
    auto ref = saloba::testing::random_seq(rng, rlen);
    std::size_t qlen = rlen - rng.below(rlen / 4);
    std::vector<seq::BaseCode> query(ref.begin(),
                                     ref.begin() + static_cast<std::ptrdiff_t>(qlen));
    query = saloba::testing::mutate(rng, query, 0.06);
    batch.add(std::move(query), std::move(ref));
  }
  return batch;
}

bool is_routed(const seq::PairBatch& batch, std::size_t i, const LongReadPolicy& policy) {
  return policy.routes(batch.refs[i].size(), batch.queries[i].size());
}

AlignerOptions routed_options(Backend backend) {
  AlignerOptions opts;
  opts.backend = backend;
  if (backend == Backend::kSimulated) opts.device = "gtx1650";
  opts.longread_threshold = kThreshold;
  opts.xdrop = 120;
  return opts;
}

TEST(LongReadRoute, RoutedPairsMatchWavefrontEngineOnCpu) {
  const auto batch = mixed_batch(9101, 20, 6);
  const AlignerOptions opts = routed_options(Backend::kCpu);
  const LongReadPolicy policy = opts.longread_policy();
  const auto out = Aligner(opts).align(batch);

  AlignerOptions off = opts;
  off.longread_threshold = 0;
  const auto classic = Aligner(off).align(batch);

  std::size_t routed = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (is_routed(batch, i, policy)) {
      ++routed;
      const auto expect = align::xdrop_wavefront_score(
          batch.refs[i], batch.queries[i], opts.scoring, align::XDropParams{opts.xdrop});
      EXPECT_EQ(out.results[i], expect) << "routed pair " << i;
    } else {
      // Non-routed pairs are untouched by the policy.
      EXPECT_EQ(out.results[i], classic.results[i]) << "short pair " << i;
    }
  }
  EXPECT_GT(routed, 0u);
  EXPECT_LT(routed, batch.size());
}

TEST(LongReadRoute, ShortReadWorkloadsAreRoutingInvariant) {
  // Every pair below the threshold: enabling routing must be a no-op,
  // bit-identical results on both host backends.
  const auto batch = saloba::testing::related_batch(9102, 24, 100, 130);
  for (const char* device : {"rtx3090", "simd"}) {
    AlignerOptions on = routed_options(Backend::kCpu);
    on.device = device;
    AlignerOptions off = on;
    off.longread_threshold = 0;
    const auto with = Aligner(on).align(batch);
    const auto without = Aligner(off).align(batch);
    EXPECT_EQ(with.results, without.results) << device;
    EXPECT_EQ(with.cells, without.cells) << device;
  }
}

TEST(LongReadRoute, AllBackendsAgreeOnRoutedBatches) {
  const auto batch = mixed_batch(9103, 12, 4);
  const auto cpu = Aligner(routed_options(Backend::kCpu)).align(batch);

  AlignerOptions simd = routed_options(Backend::kCpu);
  simd.device = "simd";
  EXPECT_EQ(Aligner(simd).align(batch).results, cpu.results);

  const auto sim = Aligner(routed_options(Backend::kSimulated)).align(batch);
  EXPECT_EQ(sim.results, cpu.results);
}

TEST(LongReadRoute, ShardedRoutedRunMatchesSingleLane) {
  // Routed pairs are priced by the wavefront estimate in shard packing; the
  // merged output must stay bit-identical to the unsharded run regardless.
  const auto batch = mixed_batch(9104, 18, 5);
  const auto single = Aligner(routed_options(Backend::kCpu)).align(batch);

  AlignerOptions sharded = routed_options(Backend::kCpu);
  sharded.max_shard_pairs = 4;
  sharded.cpu_lanes = 2;
  const auto out = Aligner(sharded).align(batch);
  EXPECT_EQ(out.results, single.results);
  EXPECT_GT(out.schedule.shards, 1u);
}

TEST(LongReadRoute, TracebackPhaseMirrorsRoutedScorePass) {
  const auto batch = mixed_batch(9105, 10, 4);
  AlignerOptions opts = routed_options(Backend::kCpu);
  opts.traceback = true;
  const LongReadPolicy policy = opts.longread_policy();
  const auto out = Aligner(opts).align(batch);
  ASSERT_EQ(out.traced.size(), batch.size());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& t = out.traced[i];
    EXPECT_EQ(t.end, out.results[i]) << "pair " << i;
    if (out.results[i].score <= 0) continue;
    EXPECT_TRUE(align::cigar_consistent(t, batch.refs[i].size(), batch.queries[i].size()))
        << "pair " << i;
    EXPECT_EQ(align::rescore_cigar(t, batch.refs[i], batch.queries[i], opts.scoring),
              out.results[i].score)
        << "pair " << i;
    if (is_routed(batch, i, policy)) {
      const auto expect = align::xdrop_wavefront_align(
          batch.refs[i], batch.queries[i], opts.scoring, align::XDropParams{opts.xdrop});
      EXPECT_EQ(t, expect) << "routed pair " << i;
    }
  }
}

TEST(LongReadRoute, SimulatedBackendAttributesXdropPhase) {
  const auto batch = mixed_batch(9106, 8, 4);
  AlignerOptions opts = routed_options(Backend::kSimulated);
  opts.traceback = true;
  const auto out = Aligner(opts).align(batch);

  ASSERT_TRUE(out.kernel_stats.has_value());
  ASSERT_TRUE(out.time_breakdown.has_value());
  EXPECT_GT(out.kernel_stats->totals.xdrop_cells, 0u);
  EXPECT_GT(out.kernel_stats->totals.xdrop_bytes, 0u);
  EXPECT_GT(out.time_breakdown->xdrop_ms, 0.0);
  // The classic kernel still ran the short pairs, attributed apart.
  EXPECT_GT(out.kernel_stats->totals.dp_cells, 0u);
  // Traceback-phase counters stay separate from the routed share.
  EXPECT_GT(out.kernel_stats->totals.traceback_cells, 0u);

  AlignerOptions off = opts;
  off.longread_threshold = 0;
  const auto classic = Aligner(off).align(batch);
  ASSERT_TRUE(classic.kernel_stats.has_value());
  EXPECT_EQ(classic.kernel_stats->totals.xdrop_cells, 0u);
  EXPECT_EQ(classic.time_breakdown->xdrop_ms, 0.0);
  // Same alignments either way: routing only changes engines, not answers,
  // on pairs this clean (identity prefix + substitutions within xdrop).
  EXPECT_EQ(out.results, classic.results);
}

TEST(LongReadRoute, PolicyPricesRoutedPairsByWavefrontEstimate) {
  LongReadPolicy policy{kThreshold, 120};
  EXPECT_TRUE(policy.routes(kThreshold, 10));
  EXPECT_TRUE(policy.routes(10, kThreshold));
  EXPECT_FALSE(policy.routes(kThreshold - 1, kThreshold - 1));
  // The packing load of a routed pair is the score-bounded window, far under
  // the nominal table for ultra-long pairs.
  const std::size_t n = 100000, m = 100000;
  EXPECT_LT(policy.cells_estimate(n, m), n * m / 100);
  EXPECT_GT(policy.cells_estimate(n, m), 0u);
  LongReadPolicy off{};
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.routes(1 << 20, 1 << 20));
}

}  // namespace
}  // namespace saloba::core
