// OrderedEmitter: the reorder stage shared by the streaming merger and the
// AlignService per-session channels. Locks the invariant both lean on — the
// sink sees indices 0, 1, 2, ... with no gaps or duplicates, for every
// arrival order — at the unit level.
#include "core/ordered_emitter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace saloba::core {
namespace {

TEST(OrderedEmitter, InOrderArrivalsFlushImmediately) {
  std::vector<std::string> seen;
  OrderedEmitter<std::string> emitter(
      [&](std::size_t, std::string&& s) { seen.push_back(std::move(s)); });
  for (int i = 0; i < 4; ++i) {
    emitter.push(static_cast<std::size_t>(i), "item" + std::to_string(i));
    EXPECT_EQ(emitter.pending(), 0u);  // nothing ever buffers
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"item0", "item1", "item2", "item3"}));
  EXPECT_EQ(emitter.next_index(), 4u);
}

TEST(OrderedEmitter, OutOfOrderArrivalsBufferUntilTheGapCloses) {
  std::vector<int> seen;
  OrderedEmitter<int> emitter([&](std::size_t, int&& v) { seen.push_back(v); });
  emitter.push(2, 20);
  emitter.push(1, 10);
  EXPECT_TRUE(seen.empty());  // index 0 is still missing
  EXPECT_EQ(emitter.pending(), 2u);
  emitter.push(0, 0);  // closes the gap: flushes 0, 1, 2 at once
  EXPECT_EQ(seen, (std::vector<int>{0, 10, 20}));
  EXPECT_EQ(emitter.pending(), 0u);
  EXPECT_EQ(emitter.next_index(), 3u);
}

TEST(OrderedEmitter, SinkReceivesTheEmissionIndex) {
  std::vector<std::size_t> indices;
  OrderedEmitter<int> emitter([&](std::size_t i, int&&) { indices.push_back(i); });
  emitter.push(1, 0);
  emitter.push(0, 0);
  emitter.push(2, 0);
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(OrderedEmitter, EveryPermutationEmitsInOrder) {
  std::vector<std::size_t> order{0, 1, 2, 3, 4};
  do {
    std::vector<int> seen;
    OrderedEmitter<int> emitter([&](std::size_t, int&& v) { seen.push_back(v); });
    for (std::size_t index : order) {
      emitter.push(index, static_cast<int>(index) * 10);
    }
    EXPECT_EQ(seen, (std::vector<int>{0, 10, 20, 30, 40}));
    EXPECT_EQ(emitter.pending(), 0u);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(OrderedEmitter, RandomizedLargeStreamDrainsInOrder) {
  util::Xoshiro256 rng(7);
  constexpr std::size_t kItems = 500;
  std::vector<std::size_t> order(kItems);
  std::iota(order.begin(), order.end(), 0u);
  // Fisher-Yates with the repo RNG (the emitter itself is deterministic;
  // only the arrival order is shuffled).
  for (std::size_t i = kItems - 1; i > 0; --i) {
    std::size_t j = static_cast<std::size_t>(rng.uniform() * static_cast<double>(i + 1));
    std::swap(order[i], order[std::min(j, i)]);
  }
  std::vector<std::size_t> seen;
  OrderedEmitter<std::size_t> emitter(
      [&](std::size_t, std::size_t&& v) { seen.push_back(v); });
  for (std::size_t index : order) emitter.push(index, std::size_t{index});
  ASSERT_EQ(seen.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(emitter.next_index(), kItems);
  EXPECT_EQ(emitter.pending(), 0u);
}

TEST(OrderedEmitter, MoveOnlyPayloads) {
  std::vector<int> seen;
  OrderedEmitter<std::unique_ptr<int>> emitter(
      [&](std::size_t, std::unique_ptr<int>&& p) { seen.push_back(*p); });
  emitter.push(1, std::make_unique<int>(11));
  emitter.push(0, std::make_unique<int>(10));
  EXPECT_EQ(seen, (std::vector<int>{10, 11}));
}

TEST(OrderedEmitterDeath, DuplicateIndexIsRejected) {
  OrderedEmitter<int> buffered([](std::size_t, int&&) {});
  buffered.push(1, 0);  // still pending
  EXPECT_DEATH(buffered.push(1, 0), "duplicate completion index");

  OrderedEmitter<int> emitted([](std::size_t, int&&) {});
  emitted.push(0, 0);  // already emitted
  EXPECT_DEATH(emitted.push(0, 0), "duplicate completion index");
}

}  // namespace
}  // namespace saloba::core
