// BatchScheduler invariants: sharded + async output is element-wise
// identical to the single-batch path on both backends, input order is
// preserved no matter how shards complete, stats aggregate exactly, and
// spreading a length-skewed batch over more simulated devices reduces the
// reported wall time.
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../support/test_support.hpp"
#include "align/batch.hpp"
#include "core/aligner.hpp"
#include "core/autotune.hpp"
#include "core/backend.hpp"
#include "core/workload.hpp"

namespace saloba::core {
namespace {

AlignerOptions sim_options(int devices, std::size_t max_shard_pairs,
                           gpusim::SplitPolicy policy = gpusim::SplitPolicy::kSorted) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "gtx1650";
  opts.devices = devices;
  opts.max_shard_pairs = max_shard_pairs;
  opts.split_policy = policy;
  return opts;
}

TEST(BatchScheduler, ShardedCpuMatchesSingleBatch) {
  auto batch = saloba::testing::imbalanced_batch(601, 37, 20, 400);
  AlignerOptions plain;  // CPU, one shard
  auto expected = Aligner(plain).align(batch);

  AlignerOptions sharded = plain;
  sharded.max_shard_pairs = 5;  // 8 shards on one lane
  auto out = Aligner(sharded).align(batch);

  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.cells, expected.cells);
  EXPECT_EQ(out.schedule.shards, 8u);
  EXPECT_FALSE(out.kernel_stats.has_value());
}

TEST(BatchScheduler, ShardedSimMatchesSingleBatch) {
  auto batch = saloba::testing::imbalanced_batch(602, 33, 30, 500);
  auto expected = Aligner(sim_options(1, 0)).align(batch);
  auto out = Aligner(sim_options(2, 6)).align(batch);
  EXPECT_EQ(out.results, expected.results);
  ASSERT_TRUE(out.kernel_stats.has_value());
  // Functional work is conserved exactly across shards.
  EXPECT_EQ(out.kernel_stats->totals.dp_cells, expected.kernel_stats->totals.dp_cells);
}

TEST(BatchScheduler, OrderPreservedUnderUnequalShardCompletion) {
  // Wildly skewed pair sizes + sorted packing: shards finish at very
  // different times and in an order unrelated to input order.
  util::Xoshiro256 rng(603);
  seq::PairBatch batch;
  for (int i = 0; i < 48; ++i) {
    std::size_t len = rng.bernoulli(0.2) ? 1200 : 40;
    batch.add(saloba::testing::random_seq(rng, len), saloba::testing::random_seq(rng, len));
  }
  auto expected = align::align_batch(batch, align::ScoringScheme{});
  for (int devices : {1, 2, 3}) {
    auto out = Aligner(sim_options(devices, 4)).align(batch);
    ASSERT_EQ(out.results.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(out.results[i], expected[i]) << "devices=" << devices << " pair " << i;
    }
  }
}

TEST(BatchScheduler, StatsAndTimesAggregateAcrossShards) {
  auto batch = saloba::testing::related_batch(604, 24, 150, 200);
  auto out = Aligner(sim_options(2, 5)).align(batch);

  ASSERT_TRUE(out.time_breakdown.has_value());
  EXPECT_EQ(out.schedule.lanes, 2);
  ASSERT_EQ(out.schedule.lane_ms.size(), 2u);
  double lane_sum = 0.0;
  double lane_max = 0.0;
  for (double ms : out.schedule.lane_ms) {
    EXPECT_GE(ms, 0.0);
    lane_sum += ms;
    lane_max = std::max(lane_max, ms);
  }
  EXPECT_DOUBLE_EQ(out.schedule.makespan_ms, lane_max);
  EXPECT_DOUBLE_EQ(out.time_ms, out.schedule.makespan_ms);
  EXPECT_GT(out.schedule.imbalance, 0.0);
  // gcups is computed once, from the merged output.
  EXPECT_DOUBLE_EQ(out.gcups, static_cast<double>(out.cells) / (out.time_ms * 1e6));
}

TEST(BatchScheduler, MultiDeviceReducesWallTimeOnDatasetB) {
  // Acceptance: devices >= 2 on the dataset B' workload beats one device.
  auto genome = make_genome(1 << 20, 77);
  auto ds = make_dataset_b(genome, 40, 7);
  ASSERT_GT(ds.batch.size(), 8u);

  AlignerOptions one = sim_options(1, 0);
  one.kernel = "saloba-sw16";
  AlignerOptions two = sim_options(2, 0);
  two.kernel = "saloba-sw16";
  auto t1 = Aligner(one).align(ds.batch);
  auto t2 = Aligner(two).align(ds.batch);
  EXPECT_EQ(t1.results, t2.results);
  EXPECT_LT(t2.time_ms, t1.time_ms);
  EXPECT_EQ(t2.schedule.shards, 2u);
}

TEST(BatchScheduler, EmptyBatchYieldsEmptyOutput) {
  seq::PairBatch empty;
  auto out = Aligner(sim_options(2, 3)).align(empty);
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.schedule.shards, 0u);
  EXPECT_DOUBLE_EQ(out.time_ms, 0.0);
}

TEST(BatchScheduler, SingleShardFastPathReportsOneShard) {
  auto batch = saloba::testing::related_batch(605, 10, 80, 100);
  auto out = Aligner(sim_options(1, 0)).align(batch);
  EXPECT_EQ(out.schedule.shards, 1u);
  EXPECT_EQ(out.schedule.lanes, 1);
  ASSERT_EQ(out.schedule.lane_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(out.schedule.lane_ms[0], out.time_ms);
}

TEST(BatchScheduler, DirectSchedulerUseOverCpuBackend) {
  // The scheduler is usable without the Aligner facade.
  auto batch = saloba::testing::imbalanced_batch(606, 21, 10, 300);
  CpuBackend backend{align::ScoringScheme{}};
  SchedulerOptions sched;
  sched.max_shard_pairs = 4;
  BatchScheduler scheduler(&backend, sched);
  auto out = scheduler.run(batch);
  EXPECT_EQ(out.results, align::align_batch(batch, align::ScoringScheme{}));
  EXPECT_EQ(out.schedule.shards, 6u);
}

TEST(BatchScheduler, IdleLanesRaiseReportedImbalance) {
  // One pair over four simulated devices lands on a single lane. The old
  // busy-lane-mean normalization called that "imbalance 1.0 (balanced)";
  // counting all lanes it is 4.0, with busy_lanes exposing the 1/4.
  seq::PairBatch one;
  util::Xoshiro256 rng(608);
  one.add(saloba::testing::random_seq(rng, 100), saloba::testing::random_seq(rng, 120));
  auto out = Aligner(sim_options(4, 0)).align(one);
  EXPECT_EQ(out.schedule.lanes, 4);
  EXPECT_EQ(out.schedule.busy_lanes, 1);
  EXPECT_DOUBLE_EQ(out.schedule.imbalance, 4.0);
}

TEST(BatchScheduler, BalancedLanesStillReportNearOneImbalance) {
  auto batch = saloba::testing::related_batch(609, 32, 150, 150);
  auto out = Aligner(sim_options(2, 0)).align(batch);
  EXPECT_EQ(out.schedule.busy_lanes, 2);
  EXPECT_GE(out.schedule.imbalance, 1.0);
  EXPECT_LT(out.schedule.imbalance, 1.5);
}

TEST(BatchScheduler, MixedPresetAlignerMatchesHomogeneousResults) {
  // Heterogeneous lanes are a cost property only: a gtx1650+rtx3090 run
  // returns exactly the single-device results, with weights in the report.
  auto batch = saloba::testing::imbalanced_batch(610, 40, 30, 500);
  auto expected = Aligner(sim_options(1, 0)).align(batch);

  AlignerOptions mixed = sim_options(1, 0);
  mixed.device = "gtx1650,rtx3090";
  auto out = Aligner(mixed).align(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.schedule.lanes, 2);
  ASSERT_EQ(out.schedule.lane_weights.size(), 2u);
  EXPECT_DOUBLE_EQ(out.schedule.lane_weights[0], 1.0);
  EXPECT_GT(out.schedule.lane_weights[1], 1.0);
}

TEST(BatchScheduler, WeightedLptBeatsUniformLptOnMixedPresets) {
  // Acceptance: on a skewed batch over gtx1650+rtx3090, the cost-aware
  // partition yields strictly lower simulated makespan than treating both
  // lanes as equal, and the results are identical either way.
  util::Xoshiro256 rng(611);
  seq::PairBatch batch;
  for (int i = 0; i < 160; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 800 + rng.below(1200) : 40 + rng.below(120);
    batch.add(saloba::testing::random_seq(rng, len), saloba::testing::random_seq(rng, len));
  }

  AlignerOptions mixed = sim_options(1, 0);
  mixed.device = "gtx1650,rtx3090";
  auto backend = make_backend(mixed);
  const auto weighted = lane_weights(*backend);
  const std::vector<double> uniform(weighted.size(), 1.0);
  // The weight-aware autotuner's shard cap for both schemes, so the
  // comparison isolates the lane-assignment policy; shards stay large
  // enough that per-shard launch overhead doesn't dominate.
  const std::size_t cap = recommend_scheduler(stats_of(batch), weighted).max_shard_pairs;
  ASSERT_GT(cap, 0u);

  auto run_scheme = [&](const std::vector<double>& weights) {
    std::vector<double> lane_ms(weights.size(), 0.0);
    std::vector<align::AlignmentResult> results(batch.size());
    for (const auto& shard :
         gpusim::make_shards(batch, weights, gpusim::SplitPolicy::kSorted, cap)) {
      auto bo = backend->run(shard.batch, shard.lane);
      lane_ms[static_cast<std::size_t>(shard.lane)] += bo.time_ms;
      for (std::size_t i = 0; i < shard.indices.size(); ++i) {
        results[shard.indices[i]] = bo.results[i];
      }
    }
    return std::pair{*std::max_element(lane_ms.begin(), lane_ms.end()), results};
  };

  auto [uniform_makespan, uniform_results] = run_scheme(uniform);
  auto [weighted_makespan, weighted_results] = run_scheme(weighted);
  EXPECT_LT(weighted_makespan, uniform_makespan);
  EXPECT_EQ(weighted_results, uniform_results);
}

TEST(BatchScheduler, ShardExceptionsPropagate) {
  // ADEPT's 1024 bp structural limit must surface through the async path.
  auto batch = saloba::testing::imbalanced_batch(607, 12, 2000, 2100);
  AlignerOptions opts = sim_options(2, 3);
  opts.kernel = "adept";
  Aligner aligner(opts);
  EXPECT_THROW(aligner.align(batch), kernels::KernelUnsupportedError);
}

}  // namespace
}  // namespace saloba::core
