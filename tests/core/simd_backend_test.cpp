// SimdCpuBackend: device-string routing, calibrated lane weights, and
// bit-identical parity with CpuBackend through the whole scheduler stack
// (score pass, banded/z-drop runs, two-phase traceback). `ctest -L simd`.
#include "core/backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "../support/test_support.hpp"
#include "align/batch.hpp"
#include "core/aligner.hpp"

namespace saloba::core {
namespace {

TEST(SimdCpuBackend, RunMatchesScalarBackend) {
  auto batch = saloba::testing::imbalanced_batch(801, 40, 5, 300);
  CpuBackend scalar{align::ScoringScheme{}};
  SimdCpuBackend simd{align::ScoringScheme{}, {SimdCpuBackend::LaneKind::kSimd}};
  EXPECT_EQ(simd.lanes(), 1);
  EXPECT_EQ(simd.name(), "simd");
  auto want = scalar.run(batch, 0);
  auto got = simd.run(batch, 0);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(got.cells, want.cells);
  EXPECT_FALSE(got.kernel_stats.has_value());
}

TEST(SimdCpuBackend, BandedZdropRunMatchesScalarBackend) {
  auto batch = saloba::testing::related_batch(802, 30, 100, 140);
  batch.default_band = 16;
  CpuBackend scalar{align::ScoringScheme{}, 1, 0, /*zdrop=*/20};
  SimdCpuBackend simd{align::ScoringScheme{}, {SimdCpuBackend::LaneKind::kSimd}, 0,
                      /*zdrop=*/20};
  auto want = scalar.run(batch, 0);
  auto got = simd.run(batch, 0);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(got.cells, want.cells);
}

TEST(SimdCpuBackend, TracebackPhaseMatchesScalarBackend) {
  auto batch = saloba::testing::related_batch(803, 20, 90, 130);
  CpuBackend scalar{align::ScoringScheme{}};
  SimdCpuBackend simd{align::ScoringScheme{}, {SimdCpuBackend::LaneKind::kSimd}};
  auto score = simd.run(batch, 0);
  auto want = scalar.run_traceback(batch, score.results, TracebackSettings{}, 0);
  auto got = simd.run_traceback(batch, score.results, TracebackSettings{}, 0);
  EXPECT_EQ(got.traced, want.traced);
  EXPECT_EQ(got.cells, want.cells);
}

TEST(SimdCpuBackend, CalibratedLaneWeightOrdersLanes) {
  const double speedup = simd_lane_speedup();
  EXPECT_GE(speedup, 1.0);
  EXPECT_LE(speedup, 64.0);

  SimdCpuBackend mixed{align::ScoringScheme{},
                       {SimdCpuBackend::LaneKind::kSimd, SimdCpuBackend::LaneKind::kScalar},
                       /*threads_total=*/2};
  EXPECT_EQ(mixed.lanes(), 2);
  EXPECT_EQ(mixed.name(), "simd+cpu");
  EXPECT_EQ(mixed.lane_kind(0), SimdCpuBackend::LaneKind::kSimd);
  EXPECT_EQ(mixed.lane_kind(1), SimdCpuBackend::LaneKind::kScalar);
  // Same thread budget per lane: the SIMD lane's weight is exactly the
  // calibrated engine ratio times the scalar lane's.
  EXPECT_DOUBLE_EQ(mixed.lane_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(mixed.lane_weight(0), speedup);
  EXPECT_GE(mixed.lane_weight(0), mixed.lane_weight(1));
}

TEST(MakeBackend, RoutesHostDeviceStrings) {
  AlignerOptions opts;  // Backend::kCpu, device "rtx3090"
  EXPECT_EQ(make_backend(opts)->name(), "cpu");  // legacy shape unchanged

  opts.device = "cpu";
  EXPECT_EQ(make_backend(opts)->name(), "cpu");

  opts.device = "simd";
  auto simd = make_backend(opts);
  EXPECT_EQ(simd->name(), "simd");
  EXPECT_EQ(simd->lanes(), 1);

  opts.device = "simd";
  opts.cpu_lanes = 3;
  EXPECT_EQ(make_backend(opts)->lanes(), 3);
  opts.cpu_lanes = 1;

  opts.device = "simd,cpu";
  auto mixed = make_backend(opts);
  EXPECT_EQ(mixed->name(), "simd+cpu");
  EXPECT_EQ(mixed->lanes(), 2);

  opts.device = "cpu,cpu";
  auto two_scalar = make_backend(opts);
  EXPECT_EQ(two_scalar->name(), "cpu");
  EXPECT_EQ(two_scalar->lanes(), 2);

  opts.device = "simd,rtx3090";
  EXPECT_THROW(make_backend(opts), std::invalid_argument);
}

TEST(SimdAligner, EndToEndMatchesCpuAligner) {
  auto batch = saloba::testing::imbalanced_batch(804, 60, 10, 250);
  AlignerOptions cpu_opts;
  auto want = Aligner(cpu_opts).align(batch);

  AlignerOptions simd_opts;
  simd_opts.device = "simd";
  auto got = Aligner(simd_opts).align(batch);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(got.cells, want.cells);
}

TEST(SimdAligner, BandedTracebackMatchesCpuAligner) {
  auto batch = saloba::testing::related_batch(805, 25, 110, 150);
  AlignerOptions cpu_opts;
  cpu_opts.band = 24;
  cpu_opts.zdrop = 60;
  cpu_opts.traceback = true;
  auto want = Aligner(cpu_opts).align(batch);

  AlignerOptions simd_opts = cpu_opts;
  simd_opts.device = "simd";
  auto got = Aligner(simd_opts).align(batch);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(got.traced, want.traced);
}

TEST(SimdAligner, MixedLanesScheduleBitIdentical) {
  auto batch = saloba::testing::imbalanced_batch(806, 50, 20, 280);
  AlignerOptions cpu_opts;
  auto want = Aligner(cpu_opts).align(batch);

  AlignerOptions mixed;
  mixed.device = "simd,cpu";
  mixed.cpu_threads = 2;
  mixed.max_shard_pairs = 8;  // force several shards across both lanes
  auto got = Aligner(mixed).align(batch);
  EXPECT_EQ(got.results, want.results);
  EXPECT_EQ(got.schedule.lanes, 2);
  ASSERT_EQ(got.schedule.lane_weights.size(), 2u);
  // Weighted LPT saw the calibration: the SIMD lane outweighs the scalar one.
  EXPECT_GE(got.schedule.lane_weights[0], got.schedule.lane_weights[1]);
}

}  // namespace
}  // namespace saloba::core
