// StreamAligner invariants: a streamed run is bit-identical to the one-shot
// Aligner::align path (same results, same order) on both backends, the
// merger restores input order even with concurrent align workers, residency
// never exceeds the chunk budget, degenerate inputs yield well-formed
// outputs, and shutting the pipeline down early (source/sink failure) joins
// every thread cleanly and rethrows.
#include "core/stream_aligner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "../support/test_support.hpp"
#include "core/aligner.hpp"
#include "core/workload.hpp"
#include "seq/fasta.hpp"

namespace saloba::core {
namespace {

AlignerOptions sim_options(int devices = 1) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.device = "gtx1650";
  opts.devices = devices;
  return opts;
}

TEST(StreamAligner, StreamedCpuBitIdenticalToOneShot) {
  auto batch = saloba::testing::imbalanced_batch(801, 53, 20, 400);
  AlignerOptions opts;  // CPU
  auto expected = Aligner(opts).align(batch);

  StreamOptions stream;
  stream.chunk_pairs = 7;  // far smaller than the batch
  stream.queue_capacity = 3;
  StreamAligner streamer(opts, stream);
  auto out = streamer.align_streamed(batch);

  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.cells, expected.cells);
  EXPECT_GE(out.schedule.shards, (batch.size() + 6) / 7);
}

TEST(StreamAligner, StreamedSimBitIdenticalToOneShotAcrossDevices) {
  auto batch = saloba::testing::imbalanced_batch(802, 41, 30, 500);
  for (int devices : {1, 2}) {
    auto expected = Aligner(sim_options(devices)).align(batch);
    StreamOptions stream;
    stream.chunk_pairs = 9;
    StreamAligner streamer(sim_options(devices), stream);
    auto out = streamer.align_streamed(batch);
    EXPECT_EQ(out.results, expected.results) << "devices=" << devices;
    ASSERT_TRUE(out.kernel_stats.has_value());
    // Functional work is conserved exactly, chunked or not.
    EXPECT_EQ(out.kernel_stats->totals.dp_cells, expected.kernel_stats->totals.dp_cells);
  }
}

TEST(StreamAligner, StreamedBandPolicyBitIdenticalToOneShot) {
  // Banded parity (Sec. VII-B): with an Aligner-level band policy set, a
  // streamed run must stay bit-identical to one-shot Aligner::align — the
  // per-chunk materialization cannot drift from the scheduler's.
  auto batch = saloba::testing::imbalanced_batch(806, 47, 10, 350);
  for (bool simulated : {false, true}) {
    AlignerOptions opts = simulated ? sim_options(2) : AlignerOptions{};
    opts.band = 6;
    opts.band_frac = 0.125;
    auto expected = Aligner(opts).align(batch);

    StreamOptions stream;
    stream.chunk_pairs = 8;
    stream.queue_capacity = 3;
    stream.align_threads = 2;
    StreamAligner streamer(opts, stream);
    auto out = streamer.align_streamed(batch);

    EXPECT_EQ(out.results, expected.results) << (simulated ? "sim" : "cpu");
    // The banded workload measure is conserved across chunking too.
    EXPECT_EQ(out.cells, expected.cells) << (simulated ? "sim" : "cpu");
    seq::PairBatch banded = batch;
    materialize_bands(banded, opts.band_policy());
    EXPECT_EQ(out.cells, banded.total_banded_cells());
    if (simulated) {
      ASSERT_TRUE(out.kernel_stats.has_value());
      EXPECT_EQ(out.kernel_stats->totals.dp_cells, expected.kernel_stats->totals.dp_cells);
      EXPECT_EQ(out.kernel_stats->totals.dp_cells_skipped,
                expected.kernel_stats->totals.dp_cells_skipped);
    }
  }
}

TEST(StreamAligner, ExplicitSchedulePreservesAlignerBandPolicy) {
  // Regression: pinning StreamOptions::schedule (a results-neutral tuning
  // override) must not silently discard the AlignerOptions band policy —
  // streamed stays bit-identical to one-shot for the same AlignerOptions.
  auto batch = saloba::testing::imbalanced_batch(808, 30, 10, 250);
  AlignerOptions opts;
  opts.band = 9;
  auto expected = Aligner(opts).align(batch);

  StreamOptions stream;
  stream.chunk_pairs = 5;
  SchedulerOptions pinned;
  pinned.max_shard_pairs = 3;  // tuning only; band left unset
  stream.schedule = pinned;
  StreamAligner streamer(opts, stream);
  auto out = streamer.align_streamed(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.cells, expected.cells);
}

TEST(StreamAligner, MixedBandSourceBatchUnderPolicyStaysOneShotIdentical) {
  // Regression: a source batch mixing explicit band-0 (full table) pairs
  // with banded ones, streamed at one pair per chunk under an Aligner band
  // policy. Chunks holding only band-0 pairs must keep counting as
  // band-carrying, or the policy would banded-clamp pairs the one-shot
  // path runs full-table.
  util::Xoshiro256 rng(809);
  seq::PairBatch batch;
  for (int i = 0; i < 16; ++i) {
    std::size_t len = 40 + rng.below(200);
    batch.add(saloba::testing::random_seq(rng, len),
              saloba::testing::random_seq(rng, len + rng.below(60)),
              i % 2 == 0 ? 0 : 1 + rng.below(24));
  }
  ASSERT_TRUE(batch.has_band_info());
  AlignerOptions opts;
  opts.band = 2;  // would clamp the band-0 pairs hard if it leaked through
  auto expected = Aligner(opts).align(batch);

  StreamOptions stream;
  stream.chunk_pairs = 1;  // isolates every band-0 pair in its own chunk
  StreamAligner streamer(opts, stream);
  auto out = streamer.align_streamed(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.cells, expected.cells);
}

TEST(StreamAligner, StreamedBandedSourceBatchBitIdenticalToOneShot) {
  // A source batch that already carries its own per-pair bands (the seedext
  // job shape): ResidentChunkSource must forward them into every chunk.
  util::Xoshiro256 rng(807);
  seq::PairBatch batch;
  for (int i = 0; i < 40; ++i) {
    std::size_t len = 20 + rng.below(300);
    batch.add(saloba::testing::random_seq(rng, len),
              saloba::testing::random_seq(rng, len + rng.below(80)),
              1 + rng.below(48));
  }
  AlignerOptions opts = sim_options(1);
  auto expected = Aligner(opts).align(batch);

  StreamOptions stream;
  stream.chunk_pairs = 6;
  StreamAligner streamer(opts, stream);
  auto out = streamer.align_streamed(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.cells, expected.cells);
  EXPECT_EQ(out.cells, batch.total_banded_cells());
}

TEST(StreamAligner, MergerRestoresOrderUnderConcurrentWorkers) {
  // Wildly skewed chunk costs + 3 concurrent align workers: chunks finish
  // out of order, the sink must still see them in input order.
  util::Xoshiro256 rng(803);
  seq::PairBatch batch;
  for (int i = 0; i < 60; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 1000 : 30;
    batch.add(saloba::testing::random_seq(rng, len), saloba::testing::random_seq(rng, len));
  }
  auto expected = Aligner(sim_options(1)).align(batch);

  StreamOptions stream;
  stream.chunk_pairs = 5;
  stream.queue_capacity = 6;
  stream.align_threads = 3;
  StreamAligner streamer(sim_options(1), stream);

  std::vector<std::size_t> seen_chunks;
  ResidentChunkSource source(batch, stream.chunk_pairs);
  std::vector<align::AlignmentResult> results(batch.size());
  auto stats = streamer.run(source, [&](std::size_t index, std::size_t first_pair,
                                        AlignOutput&& out) {
    seen_chunks.push_back(index);
    std::copy(out.results.begin(), out.results.end(),
              results.begin() + static_cast<std::ptrdiff_t>(first_pair));
  });

  ASSERT_EQ(seen_chunks.size(), stats.chunks);
  for (std::size_t i = 0; i < seen_chunks.size(); ++i) {
    EXPECT_EQ(seen_chunks[i], i);  // strictly ascending chunk order
  }
  EXPECT_EQ(results, expected.results);
  EXPECT_EQ(stats.pairs, batch.size());
}

TEST(StreamAligner, ResidencyStaysWithinChunkBudget) {
  auto batch = saloba::testing::related_batch(804, 64, 60, 80);
  StreamOptions stream;
  stream.chunk_pairs = 4;
  stream.queue_capacity = 3;
  StreamAligner streamer(AlignerOptions{}, stream);
  ResidentChunkSource source(batch, stream.chunk_pairs);
  auto stats = streamer.run(source, nullptr);
  EXPECT_EQ(stats.pairs, batch.size());
  EXPECT_LE(stats.peak_resident_chunks, stream.queue_capacity);
  EXPECT_LE(stats.peak_resident_pairs, stream.chunk_pairs * stream.queue_capacity);
}

TEST(StreamAligner, EmptyStreamYieldsWellFormedOutput) {
  // Degenerate-input guard: no chunks at all must still produce zeroed,
  // NaN-free stats and a well-formed AlignOutput.
  seq::PairBatch empty;
  StreamAligner streamer(sim_options(2));
  auto out = streamer.align_streamed(empty);
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.schedule.shards, 0u);
  EXPECT_DOUBLE_EQ(out.time_ms, 0.0);
  EXPECT_DOUBLE_EQ(out.gcups, 0.0);
  EXPECT_FALSE(out.gcups != out.gcups);  // not NaN
  ASSERT_EQ(out.schedule.lane_ms.size(), 2u);

  ResidentChunkSource source(empty, 8);
  auto stats = streamer.run(source, nullptr);
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(stats.pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.gcups, 0.0);
  EXPECT_GE(stats.wall_ms, 0.0);
}

TEST(StreamAligner, EmptyBatchThroughSchedulerStaysWellFormed) {
  // Companion regression for the one-shot path: empty PairBatch through the
  // CPU scheduler (the sim path is covered in scheduler_test).
  seq::PairBatch empty;
  auto out = Aligner(AlignerOptions{}).align(empty);
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.schedule.shards, 0u);
  EXPECT_DOUBLE_EQ(out.gcups, 0.0);
  EXPECT_FALSE(out.gcups != out.gcups);
}

TEST(StreamAligner, SourceFailureShutsPipelineDownCleanly) {
  // The shutdown path: a source that throws mid-stream must not deadlock
  // the queues; every thread joins and the exception resurfaces.
  class FailingSource final : public PairChunkSource {
   public:
    bool next(seq::PairBatch& chunk) override {
      if (++calls_ > 3) throw std::runtime_error("disk died");
      chunk = saloba::testing::related_batch(805 + calls_, 6, 40, 60);
      return true;
    }

   private:
    int calls_ = 0;
  };

  FailingSource source;
  StreamAligner streamer(AlignerOptions{});
  EXPECT_THROW(streamer.run(source, nullptr), std::runtime_error);
}

TEST(StreamAligner, SinkFailureShutsPipelineDownCleanly) {
  auto batch = saloba::testing::related_batch(806, 40, 40, 60);
  StreamOptions stream;
  stream.chunk_pairs = 4;
  StreamAligner streamer(AlignerOptions{}, stream);
  ResidentChunkSource source(batch, stream.chunk_pairs);
  EXPECT_THROW(streamer.run(source,
                            [](std::size_t index, std::size_t, AlignOutput&&) {
                              if (index == 2) throw std::runtime_error("sink full");
                            }),
               std::runtime_error);
}

TEST(StreamAligner, ReaderPairSourceZipsTwoStreams) {
  // Two FASTQ streams of unequal record sizes zipped pairwise, with
  // scores matching the resident path over the same pairs.
  auto batch = saloba::testing::related_batch(807, 11, 50, 70);
  std::vector<seq::Sequence> queries(batch.size()), refs(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    queries[i].name = "q" + std::to_string(i);
    queries[i].bases = batch.queries[i];
    refs[i].name = "r" + std::to_string(i);
    refs[i].bases = batch.refs[i];
  }
  std::ostringstream qs, rs;
  seq::write_fastq(qs, queries);
  seq::write_fastq(rs, refs);

  std::istringstream qin(qs.str()), rin(rs.str());
  seq::FastqChunkReader qreader(qin, 4);
  seq::FastqChunkReader rreader(rin, 4);
  ReaderPairSource source(qreader, rreader);

  StreamAligner streamer(AlignerOptions{});
  std::vector<align::AlignmentResult> results(batch.size());
  streamer.run(source, [&](std::size_t, std::size_t first_pair, AlignOutput&& out) {
    std::copy(out.results.begin(), out.results.end(),
              results.begin() + static_cast<std::ptrdiff_t>(first_pair));
  });
  EXPECT_EQ(results, Aligner(AlignerOptions{}).align(batch).results);
}

TEST(StreamAligner, ReaderPairSourceRejectsLengthMismatch) {
  std::istringstream qin("@q0\nACGT\n+\nIIII\n@q1\nACGT\n+\nIIII\n");
  std::istringstream rin("@r0\nTTTT\n+\nIIII\n");
  seq::FastqChunkReader qreader(qin, 4);
  seq::FastqChunkReader rreader(rin, 4);
  ReaderPairSource source(qreader, rreader);
  StreamAligner streamer(AlignerOptions{});
  EXPECT_THROW(streamer.run(source, nullptr), std::runtime_error);
}

TEST(StreamAligner, StreamedMixedPresetBitIdenticalToOneShot) {
  // Heterogeneous lanes through the streaming pipeline: a gtx1650+rtx3090
  // backend, chunked, must reproduce the one-shot mixed-preset run exactly.
  auto batch = saloba::testing::imbalanced_batch(810, 37, 30, 600);
  AlignerOptions opts = sim_options();
  opts.device = "gtx1650,rtx3090";
  auto expected = Aligner(opts).align(batch);

  StreamOptions stream;
  stream.chunk_pairs = 8;
  StreamAligner streamer(opts, stream);
  EXPECT_EQ(streamer.backend().lanes(), 2);
  auto out = streamer.align_streamed(batch);
  EXPECT_EQ(out.results, expected.results);
  EXPECT_EQ(out.cells, expected.cells);
  ASSERT_EQ(out.schedule.lane_weights.size(), 2u);
  EXPECT_GT(out.schedule.lane_weights[1], out.schedule.lane_weights[0]);
}

TEST(StreamAligner, StreamImbalanceCountsIdleLanes) {
  // Companion regression for the streaming call site of the busy-lane bug:
  // single-pair chunks over a 2-device backend all land on lane 0, so the
  // aggregate must report busy_lanes 1 and imbalance 2, not a "balanced" 1.
  auto batch = saloba::testing::related_batch(811, 6, 60, 80);
  StreamOptions stream;
  stream.chunk_pairs = 1;
  StreamAligner streamer(sim_options(2), stream);
  auto out = streamer.align_streamed(batch);
  ASSERT_EQ(out.schedule.lane_ms.size(), 2u);
  EXPECT_GT(out.schedule.lane_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(out.schedule.lane_ms[1], 0.0);
  EXPECT_EQ(out.schedule.busy_lanes, 1);
  EXPECT_DOUBLE_EQ(out.schedule.imbalance, 2.0);
}

TEST(StreamAligner, AutotunedScheduleShardsSkewedChunks) {
  // With autotune on (the default), a skewed chunk bigger than 4 shards per
  // lane gets a shard cap; the uniform chunk stays a single launch.
  auto skewed = saloba::testing::imbalanced_batch(808, 40, 20, 800);
  StreamOptions stream;
  stream.chunk_pairs = 40;  // one chunk
  StreamAligner streamer(AlignerOptions{}, stream);
  auto out = streamer.align_streamed(skewed);
  EXPECT_GT(out.schedule.shards, 1u);
  EXPECT_EQ(out.results, Aligner(AlignerOptions{}).align(skewed).results);

  auto uniform = saloba::testing::related_batch(809, 40, 100, 100);
  auto out2 = streamer.align_streamed(uniform);
  EXPECT_EQ(out2.schedule.shards, 1u);
}

}  // namespace
}  // namespace saloba::core
