// The traceback phase as a scheduler/backend concern: phase stats and time
// split, z-drop endpoint parity on the CPU backend, sharded vs single-lane
// trace identity, and the streaming aggregates.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "core/aligner.hpp"
#include "core/backend.hpp"
#include "core/stream_aligner.hpp"

namespace saloba::core {
namespace {

TEST(TracebackPhase, SimulatedBackendModelsPhaseCostInStatsAndBreakdown) {
  auto batch = saloba::testing::related_batch(21, 24, 96, 128);

  AlignerOptions score_only;
  score_only.backend = Backend::kSimulated;
  auto base = Aligner(score_only).align(batch);

  AlignerOptions opts = score_only;
  opts.traceback = true;
  auto out = Aligner(opts).align(batch);

  // The phase shows up in the counters and the breakdown...
  ASSERT_TRUE(out.kernel_stats.has_value());
  EXPECT_GT(out.kernel_stats->totals.traceback_cells, 0u);
  EXPECT_GT(out.kernel_stats->totals.traceback_bytes, 0u);
  EXPECT_EQ(out.kernel_stats->totals.traceback_cells, out.traceback_cells);
  ASSERT_TRUE(out.time_breakdown.has_value());
  EXPECT_GT(out.time_breakdown->traceback_ms, 0.0);
  EXPECT_GT(out.traceback_ms, 0.0);

  // ...without perturbing the score pass: same results, same score-phase
  // cells and simulated time.
  EXPECT_EQ(out.results, base.results);
  ASSERT_TRUE(base.kernel_stats.has_value());
  EXPECT_EQ(out.kernel_stats->totals.dp_cells, base.kernel_stats->totals.dp_cells);
  EXPECT_EQ(base.kernel_stats->totals.traceback_cells, 0u);
  EXPECT_DOUBLE_EQ(out.time_ms, base.time_ms);
}

TEST(TracebackPhase, CpuZdropEndpointsStayBitIdentical) {
  // Z-drop changes score-pass results; the engine mirrors it, so traced
  // endpoints must still equal the (z-dropped) score pass bit for bit.
  auto batch = saloba::testing::imbalanced_batch(33, 40, 20, 300);
  batch.default_band = 24;
  AlignerOptions opts;
  opts.zdrop = 25;
  opts.band = 24;
  opts.traceback = true;
  auto out = Aligner(opts).align(batch);
  ASSERT_EQ(out.traced.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out.traced[i].end, out.results[i]) << "pair " << i;
  }
}

TEST(TracebackPhase, CpuMultiLaneShardedTracesMatchSingleLane) {
  auto batch = saloba::testing::imbalanced_batch(7, 60, 16, 200);

  AlignerOptions single;
  single.traceback = true;
  auto want = Aligner(single).align(batch);

  AlignerOptions sharded = single;
  sharded.cpu_lanes = 3;
  sharded.max_shard_pairs = 9;
  auto got = Aligner(sharded).align(batch);
  ASSERT_GT(got.schedule.shards, 1u);
  ASSERT_EQ(got.traced.size(), want.traced.size());
  for (std::size_t i = 0; i < want.traced.size(); ++i) {
    EXPECT_EQ(got.traced[i], want.traced[i]) << "pair " << i;
  }
}

TEST(TracebackPhase, HeterogeneousLanesTraceEveryPair) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.device = "gtx1650,rtx3090";
  opts.max_shard_pairs = 8;
  opts.traceback = true;
  auto batch = saloba::testing::related_batch(5, 32, 80, 120);
  auto out = Aligner(opts).align(batch);
  ASSERT_EQ(out.traced.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out.traced[i].end, out.results[i]) << "pair " << i;
  }
  EXPECT_GT(out.traceback_ms, 0.0);
}

TEST(TracebackPhase, StreamStatsReportThePhaseSplit) {
  AlignerOptions opts;
  opts.traceback = true;
  auto batch = saloba::testing::related_batch(91, 40, 60, 90);

  StreamOptions stream;
  stream.chunk_pairs = 11;
  StreamAligner aligner(opts, stream);
  ResidentChunkSource source(batch, stream.chunk_pairs);
  std::size_t traced_seen = 0;
  StreamStats stats = aligner.run(source, [&](std::size_t, std::size_t, AlignOutput&& out) {
    traced_seen += out.traced.size();
    EXPECT_EQ(out.traced.size(), out.results.size());
  });
  EXPECT_EQ(traced_seen, batch.size());
  EXPECT_GT(stats.traceback_ms, 0.0);
  EXPECT_GT(stats.traceback_cells, 0u);
}

TEST(TracebackPhase, ExplicitStreamScheduleCanEnableTraceback) {
  AlignerOptions opts;  // AlignerOptions::traceback off...
  StreamOptions stream;
  stream.chunk_pairs = 16;
  SchedulerOptions sched;
  sched.traceback = true;  // ...but the explicit schedule turns the phase on
  stream.schedule = sched;
  StreamAligner aligner(opts, stream);
  auto batch = saloba::testing::related_batch(17, 20, 50, 70);
  auto out = aligner.align_streamed(batch);
  ASSERT_EQ(out.traced.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out.traced[i].end, out.results[i]) << "pair " << i;
  }
}

TEST(TracebackPhase, BackendRunTracebackSkipsZeroScorePairs) {
  seq::PairBatch batch;
  batch.add({0, 1, 2, 3}, {0, 1, 2, 3});  // perfect match
  batch.add(std::vector<seq::BaseCode>(8, 0), std::vector<seq::BaseCode>(8, 1));  // hopeless
  align::ScoringScheme scoring;
  CpuBackend backend(scoring);
  auto results = backend.run(batch, 0).results;
  ASSERT_EQ(results[1].score, 0);
  auto tb = backend.run_traceback(batch, results, TracebackSettings{}, 0);
  ASSERT_EQ(tb.traced.size(), 2u);
  EXPECT_EQ(tb.traced[0].cigar, "4M");
  EXPECT_EQ(tb.traced[0].end, results[0]);
  EXPECT_TRUE(tb.traced[1].cigar.empty());
  EXPECT_EQ(tb.traced[1].end, results[1]);
}

}  // namespace
}  // namespace saloba::core
