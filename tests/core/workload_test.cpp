#include "core/workload.hpp"

#include <gtest/gtest.h>

namespace saloba::core {
namespace {

TEST(Workload, GenomeDeterministic) {
  auto a = make_genome(100000, 5);
  auto b = make_genome(100000, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100000u);
}

TEST(Workload, Fig6BatchShape) {
  auto genome = make_genome(1 << 20);
  auto batch = make_fig6_batch(genome, 512, 20);
  ASSERT_EQ(batch.size(), 20u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.queries[i].size(), 512u);
    EXPECT_EQ(batch.refs[i].size(), 512u);
  }
}

TEST(Workload, DatasetAShortReadShapes) {
  auto genome = make_genome(1 << 20);
  auto ds = make_dataset_a(genome, 150);
  EXPECT_GT(ds.batch.size(), 50u);
  EXPECT_EQ(ds.stats.jobs, ds.batch.size());
  // 250 bp reads: query sides bounded by read length (plus small indel
  // drift); reference windows up to ~2x.
  EXPECT_LE(ds.stats.max_query_len, 300u);
  EXPECT_LE(ds.stats.max_ref_len, 600u);
  EXPECT_GT(ds.stats.mean_query_len, 10.0);
  EXPECT_GT(ds.stats.mean_ref_len, ds.stats.mean_query_len);
}

TEST(Workload, DatasetBLongReadShapes) {
  auto genome = make_genome(1 << 20);
  auto ds = make_dataset_b(genome, 60);
  EXPECT_GT(ds.batch.size(), 30u);
  // Long noisy reads: much longer jobs with a heavy spread (Fig. 2 (c)/(d)).
  EXPECT_GT(ds.stats.max_query_len, 500u);
  EXPECT_GT(ds.stats.cv_query_len, 0.5);
}

TEST(Workload, DatasetBMoreImbalancedThanA) {
  // Warp divergence scales with the *absolute* spread of work, not the
  // relative CV: compare the standard deviation of query lengths.
  auto genome = make_genome(1 << 20);
  auto a = make_dataset_a(genome, 120);
  auto b = make_dataset_b(genome, 60);
  double a_spread = a.stats.cv_query_len * a.stats.mean_query_len;
  double b_spread = b.stats.cv_query_len * b.stats.mean_query_len;
  EXPECT_GT(b_spread, a_spread * 3);
}

TEST(Workload, DatasetsDeterministic) {
  auto genome = make_genome(1 << 19);
  auto x = make_dataset_a(genome, 40, 9);
  auto y = make_dataset_a(genome, 40, 9);
  ASSERT_EQ(x.batch.size(), y.batch.size());
  for (std::size_t i = 0; i < x.batch.size(); ++i) {
    EXPECT_EQ(x.batch.queries[i], y.batch.queries[i]);
    EXPECT_EQ(x.batch.refs[i], y.batch.refs[i]);
  }
}

}  // namespace
}  // namespace saloba::core
