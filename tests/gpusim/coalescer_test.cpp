#include "gpusim/coalescer.hpp"

#include <array>

#include <gtest/gtest.h>

namespace saloba::gpusim {
namespace {

std::array<MemAccess, 32> lanes_consecutive(std::uint64_t base, std::uint32_t size) {
  std::array<MemAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] = MemAccess{base + static_cast<std::uint64_t>(l) * size, size};
  }
  return acc;
}

TEST(Coalescer, ConsecutiveFourByteLanesAt32B) {
  auto acc = lanes_consecutive(0x1000, 4);
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 4u);  // 128 B of data in 32 B sectors
  EXPECT_EQ(r.bytes_moved, 128u);
  EXPECT_EQ(r.bytes_useful, 128u);
}

TEST(Coalescer, ConsecutiveFourByteLanesAt128B) {
  auto acc = lanes_consecutive(0x1000, 4);
  auto r = coalesce(acc, 128);
  EXPECT_EQ(r.transactions, 1u);  // pre-Volta: one full line
  EXPECT_EQ(r.bytes_moved, 128u);
}

TEST(Coalescer, BroadcastSameAddressIsOneTransaction) {
  std::array<MemAccess, 32> acc{};
  for (auto& a : acc) a = MemAccess{0x2000, 4};
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes_useful, 128u);  // 32 lanes x 4 B requested
  EXPECT_EQ(r.bytes_moved, 32u);
}

TEST(Coalescer, ScatteredLanesPayFullSectorEach) {
  // The paper's Table I pathology: each 4 B access costs a whole sector.
  std::array<MemAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] =
        MemAccess{0x4000 + static_cast<std::uint64_t>(l) * 4096, 4};
  }
  auto r32 = coalesce(acc, 32);
  EXPECT_EQ(r32.transactions, 32u);
  EXPECT_EQ(r32.bytes_moved, 32u * 32u);   // 8x waste at 32 B granularity
  EXPECT_EQ(r32.bytes_useful, 128u);
  auto r128 = coalesce(acc, 128);
  EXPECT_EQ(r128.bytes_moved, 32u * 128u);  // 32x waste pre-Volta
}

TEST(Coalescer, StridedBy32BytesTouchesEverySector) {
  auto acc = lanes_consecutive(0x8000, 4);
  for (int l = 0; l < 32; ++l) acc[static_cast<std::size_t>(l)].addr = 0x8000 + l * 32ull;
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 32u);
}

TEST(Coalescer, AccessSpanningSectorBoundaryCostsTwo) {
  std::array<MemAccess, 32> acc{};
  acc[0] = MemAccess{0x101E, 4};  // straddles the 0x1020 boundary
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 2u);
}

TEST(Coalescer, InactiveLanesIgnored) {
  std::array<MemAccess, 32> acc{};  // all size 0
  acc[7] = MemAccess{0x3000, 4};
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bytes_useful, 4u);
}

TEST(Coalescer, EmptyAccessSetIsFree) {
  std::array<MemAccess, 32> acc{};
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 0u);
  EXPECT_EQ(r.bytes_moved, 0u);
}

TEST(Coalescer, WideAccessesCountAllSectors) {
  std::array<MemAccess, 32> acc{};
  acc[0] = MemAccess{0x1000, 256};
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 8u);
  EXPECT_EQ(r.bytes_useful, 256u);
}

TEST(Coalescer, UnalignedBaseStillCoalesces) {
  // 32 lanes x 4 B starting at an unaligned base: 129 bytes span -> 5
  // sectors at 32 B.
  auto acc = lanes_consecutive(0x1004, 4);
  auto r = coalesce(acc, 32);
  EXPECT_EQ(r.transactions, 5u);
}

}  // namespace
}  // namespace saloba::gpusim
