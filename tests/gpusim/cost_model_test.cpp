#include "gpusim/cost_model.hpp"

#include <gtest/gtest.h>

namespace saloba::gpusim {
namespace {

DeviceSpec simple_device() {
  DeviceSpec d;
  d.name = "unit";
  d.sm_count = 2;
  d.schedulers_per_sm = 1;
  d.core_clock_ghz = 1.0;  // 1 cycle = 1 ns
  d.mem_bandwidth_gbps = 100.0;
  d.mem_latency_cycles = 100.0;
  d.l2_waste_absorb = 0.5;
  return d;
}

TEST(CostModel, WarpCyclesComposition) {
  DeviceSpec d = simple_device();
  CostParams p;
  p.cpi = 1.0;
  p.sync_cycles = 10.0;
  p.transaction_service_cycles = 2.0;
  WarpCounters w;
  w.instructions = 1000;
  w.shared_conflict_cycles = 50;
  w.syncs = 3;
  w.global_requests = 4;
  w.global_transactions = 16;
  // hide factor = 8 resident warps
  double cycles = warp_cycles(w, d, p, 8);
  EXPECT_NEAR(cycles, 1000 + 50 + 30 + 4 * 100.0 / 8 + 32, 1e-9);
}

TEST(CostModel, LatencyHidingSaturates) {
  DeviceSpec d = simple_device();
  CostParams p;
  p.latency_hide_saturation = 16;
  WarpCounters w;
  w.global_requests = 100;
  double at16 = warp_cycles(w, d, p, 16);
  double at64 = warp_cycles(w, d, p, 64);
  EXPECT_DOUBLE_EQ(at16, at64);
  double at2 = warp_cycles(w, d, p, 2);
  EXPECT_GT(at2, at16);
}

TEST(CostModel, PipelinedThroughputSemantics) {
  // Sustained (200-call) model: compute time = total issue work over
  // device-wide issue bandwidth, regardless of block lumpiness.
  DeviceSpec d = simple_device();  // 2 SMs x 1 scheduler
  CostParams p;
  p.launch_overhead_us = 0.0;
  Occupancy occ;
  occ.blocks_per_sm = 1;
  occ.warps_per_sm = 4;
  std::vector<BlockCost> blocks{{4000.0, 1000.0}};
  WarpCounters totals;
  TimeBreakdown t = estimate_time(d, p, occ, blocks, totals, 0);
  EXPECT_NEAR(t.compute_ms, 4000.0 / 2.0 / 1e9 * 1e3, 1e-9);
}

TEST(CostModel, ImbalanceDiagnosticFlagsMonsterBlocks) {
  DeviceSpec d = simple_device();
  CostParams p;
  Occupancy occ;
  occ.blocks_per_sm = 4;
  std::vector<BlockCost> blocks{{1000.0, 1000.0}, {10.0, 10.0}, {10.0, 10.0}};
  WarpCounters totals;
  TimeBreakdown t = estimate_time(d, p, occ, blocks, totals, 0);
  // The single-call diagnostic still exposes the monster block.
  EXPECT_GT(t.sm_imbalance, 1.5);
  // ...while sustained compute reflects total work only.
  EXPECT_NEAR(t.compute_ms, 1020.0 / 2.0 / 1e9 * 1e3, 1e-9);
}

TEST(CostModel, BalancedBlocksSpreadAcrossSms) {
  DeviceSpec d = simple_device();  // 2 SMs, 1 scheduler each
  CostParams p;
  p.launch_overhead_us = 0.0;
  Occupancy occ;
  occ.blocks_per_sm = 8;
  std::vector<BlockCost> blocks(8, BlockCost{100.0, 100.0});
  WarpCounters totals;
  TimeBreakdown t = estimate_time(d, p, occ, blocks, totals, 0);
  // 800 cycles of work over 2 SMs -> 400 cycles.
  EXPECT_NEAR(t.compute_ms, 400.0 / 1e9 * 1e3, 1e-9);
  EXPECT_NEAR(t.sm_imbalance, 1.0, 1e-9);
}

TEST(CostModel, DramRooflineDominatesWhenTrafficHuge) {
  DeviceSpec d = simple_device();  // 100 GB/s
  CostParams p;
  Occupancy occ;
  occ.blocks_per_sm = 1;
  std::vector<BlockCost> blocks{{10.0, 10.0}};
  WarpCounters totals;
  totals.global_bytes_useful = 1'000'000'000;  // 1 GB useful
  totals.global_bytes_moved = 1'000'000'000;
  TimeBreakdown t = estimate_time(d, p, occ, blocks, totals, 0);
  EXPECT_NEAR(t.dram_ms, 10.0, 0.1);  // 1 GB / 100 GB/s = 10 ms
  EXPECT_GE(t.total_ms, 10.0);
}

TEST(CostModel, L2AbsorbsConfiguredWasteFraction) {
  DeviceSpec d = simple_device();  // absorb = 0.5
  CostParams p;
  Occupancy occ;
  std::vector<BlockCost> blocks{{1.0, 1.0}};
  WarpCounters totals;
  totals.global_bytes_useful = 100;
  totals.global_bytes_moved = 300;  // 200 waste -> 100 reaches DRAM
  TimeBreakdown t = estimate_time(d, p, occ, blocks, totals, 0);
  EXPECT_NEAR(t.dram_bytes, 200.0, 1e-9);
}

TEST(CostModel, InitAndLaunchOverheadsAdd) {
  DeviceSpec d = simple_device();
  CostParams p;
  p.launch_overhead_us = 5.0;
  Occupancy occ;
  std::vector<BlockCost> blocks{{1.0, 1.0}};
  WarpCounters totals;
  TimeBreakdown t = estimate_time(d, p, occ, blocks, totals, /*init_bytes=*/100'000'000);
  EXPECT_NEAR(t.launch_ms, 0.005, 1e-12);
  EXPECT_NEAR(t.init_ms, 1.0, 1e-9);  // 100 MB / 100 GB/s
  EXPECT_NEAR(t.total_ms, t.compute_ms + t.launch_ms + t.init_ms, 1e-9);
}

TEST(CostModel, SummaryFormats) {
  TimeBreakdown t;
  t.total_ms = 1.5;
  EXPECT_NE(t.summary().find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace saloba::gpusim
