#include "gpusim/device.hpp"

#include <atomic>

#include <gtest/gtest.h>

namespace saloba::gpusim {
namespace {

TEST(Device, AllocTracksUsage) {
  Device dev(DeviceSpec::gtx1650());
  DeviceMem a = dev.alloc(1 << 20);
  EXPECT_EQ(dev.bytes_in_use(), 1u << 20);
  DeviceMem b = dev.alloc(1 << 20);
  EXPECT_NE(a.base, b.base);
  dev.free(a);
  dev.free(b);
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(Device, OomThrowsWithDetails) {
  Device dev(DeviceSpec::gtx1650());  // 4 GiB
  try {
    dev.alloc(5ULL << 30);
    FAIL() << "expected DeviceOomError";
  } catch (const DeviceOomError& e) {
    EXPECT_EQ(e.requested, 5ULL << 30);
    EXPECT_EQ(e.capacity, 4ULL << 30);
  }
}

TEST(Device, OomConsidersExistingAllocations) {
  Device dev(DeviceSpec::gtx1650());
  DeviceMem a = dev.alloc(3ULL << 30);
  EXPECT_THROW(dev.alloc(2ULL << 30), DeviceOomError);
  dev.free(a);
  DeviceMem b = dev.alloc(2ULL << 30);
  dev.free(b);
}

TEST(Device, LaunchRunsEveryBlockOnce) {
  Device dev(DeviceSpec::gtx1650());
  LaunchConfig config;
  config.blocks = 57;
  config.threads_per_block = 64;
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> per_block(57);
  auto result = dev.launch(config, [&](BlockContext& blk) {
    count.fetch_add(1);
    per_block[blk.block_id()].fetch_add(1);
    blk.warp(0).issue(10, 32);
  });
  EXPECT_EQ(count.load(), 57);
  for (auto& c : per_block) EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(result.stats.blocks, 57u);
  EXPECT_EQ(result.stats.warps, 57u * 2);
  EXPECT_EQ(result.stats.totals.instructions, 57u * 10);
}

TEST(Device, LaunchTimePositiveAndComposed) {
  Device dev(DeviceSpec::rtx3090());
  LaunchConfig config;
  config.blocks = 100;
  config.threads_per_block = 128;
  auto result = dev.launch(config, [](BlockContext& blk) {
    for (int w = 0; w < blk.warps_per_block(); ++w) blk.warp(w).issue(1000, 32);
  });
  EXPECT_GT(result.time.total_ms, 0.0);
  EXPECT_GT(result.time.compute_ms, 0.0);
  EXPECT_GE(result.time.total_ms, result.time.compute_ms);
}

TEST(Device, MoreWorkTakesLonger) {
  Device dev(DeviceSpec::gtx1650());
  auto run = [&](std::uint64_t instr) {
    LaunchConfig config;
    config.blocks = 28;
    config.threads_per_block = 128;
    return dev
        .launch(config,
                [&](BlockContext& blk) {
                  for (int w = 0; w < blk.warps_per_block(); ++w) blk.warp(w).issue(instr, 32);
                })
        .time.total_ms;
  };
  EXPECT_GT(run(100000), run(1000));
}

TEST(Device, SyncthreadsChargesEveryWarp) {
  Device dev(DeviceSpec::gtx1650());
  LaunchConfig config;
  config.blocks = 1;
  config.threads_per_block = 128;
  auto result = dev.launch(config, [](BlockContext& blk) { blk.syncthreads(); });
  EXPECT_EQ(result.stats.totals.syncs, 4u);
}

TEST(Device, StatsDeterministicAcrossRuns) {
  Device dev(DeviceSpec::gtx1650());
  LaunchConfig config;
  config.blocks = 64;
  config.threads_per_block = 64;
  auto body = [](BlockContext& blk) {
    for (int w = 0; w < blk.warps_per_block(); ++w) {
      blk.warp(w).issue(100 + blk.block_id(), 32);
    }
  };
  auto a = dev.launch(config, body);
  auto b = dev.launch(config, body);
  EXPECT_EQ(a.stats.totals.instructions, b.stats.totals.instructions);
  EXPECT_DOUBLE_EQ(a.time.total_ms, b.time.total_ms);
}

TEST(Device, RunAccumulatorSums) {
  Device dev(DeviceSpec::gtx1650());
  LaunchConfig config;
  config.blocks = 4;
  config.threads_per_block = 32;
  RunAccumulator acc;
  for (int i = 0; i < 3; ++i) {
    acc.add(dev.launch(config, [](BlockContext& blk) { blk.warp(0).issue(10, 32); }));
  }
  EXPECT_EQ(acc.launches, 3u);
  EXPECT_EQ(acc.stats.totals.instructions, 120u);
  EXPECT_GT(acc.time.total_ms, 0.0);
}

TEST(DeviceDeath, RejectsZeroBlocks) {
  Device dev(DeviceSpec::gtx1650());
  LaunchConfig config;
  config.blocks = 0;
  EXPECT_DEATH(dev.launch(config, [](BlockContext&) {}), "zero blocks");
}

}  // namespace
}  // namespace saloba::gpusim
