#include "gpusim/multi_device.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "../support/test_support.hpp"

namespace saloba::gpusim {
namespace {

// A fake shard runner whose "time" is the shard's total DP area.
double area_runner(const seq::PairBatch& shard) {
  return static_cast<double>(shard.total_cells());
}

TEST(MultiDevice, SingleDeviceGetsEverything) {
  auto batch = saloba::testing::imbalanced_batch(401, 30, 10, 200);
  auto r = dispatch_shards(batch, 1, SplitPolicy::kStatic, area_runner);
  ASSERT_EQ(r.shard_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(r.makespan_ms, static_cast<double>(batch.total_cells()));
  EXPECT_DOUBLE_EQ(r.imbalance, 1.0);
}

TEST(MultiDevice, ShardsPartitionTheBatch) {
  auto batch = saloba::testing::imbalanced_batch(402, 41, 10, 100);
  double total = 0;
  auto r = dispatch_shards(batch, 4, SplitPolicy::kStatic,
                           [&](const seq::PairBatch& shard) {
                             total += static_cast<double>(shard.total_cells());
                             return area_runner(shard);
                           });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(batch.total_cells()));
  EXPECT_EQ(r.shard_ms.size(), 4u);
}

TEST(MultiDevice, SortedOrderIsByAreaDescending) {
  auto batch = saloba::testing::imbalanced_batch(403, 25, 5, 300);
  auto order = shard_order(batch, SplitPolicy::kSorted);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(batch.queries[order[i - 1]].size() * batch.refs[order[i - 1]].size(),
              batch.queries[order[i]].size() * batch.refs[order[i]].size());
  }
}

TEST(MultiDevice, SortedSplitBalancesBetterThanStatic) {
  // Heavy-tailed workload: static round-robin can stack big jobs on one
  // shard; sorted round-robin deals them out evenly.
  util::Xoshiro256 rng(404);
  seq::PairBatch batch;
  for (int i = 0; i < 64; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 2000 : 50;
    batch.add(saloba::testing::random_seq(rng, len), saloba::testing::random_seq(rng, len));
  }
  auto statik = dispatch_shards(batch, 4, SplitPolicy::kStatic, area_runner);
  auto sorted = dispatch_shards(batch, 4, SplitPolicy::kSorted, area_runner);
  EXPECT_LE(sorted.makespan_ms, statik.makespan_ms);
  EXPECT_LE(sorted.imbalance, statik.imbalance + 1e-9);
}

TEST(MultiDevice, MoreDevicesNeverIncreaseMakespan) {
  auto batch = saloba::testing::imbalanced_batch(405, 48, 20, 400);
  double prev = dispatch_shards(batch, 1, SplitPolicy::kSorted, area_runner).makespan_ms;
  for (int k : {2, 3, 4}) {
    double cur = dispatch_shards(batch, k, SplitPolicy::kSorted, area_runner).makespan_ms;
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(MultiDevice, MoreDevicesThanJobs) {
  auto batch = saloba::testing::imbalanced_batch(406, 3, 10, 50);
  auto r = dispatch_shards(batch, 8, SplitPolicy::kStatic, area_runner);
  EXPECT_EQ(r.shard_ms.size(), 8u);
  int busy = 0;
  for (double ms : r.shard_ms) busy += ms > 0;
  EXPECT_EQ(busy, 3);
}

TEST(MultiDevice, SortedSnakeTightensPerLaneCellTotals) {
  // Under kSorted a plain round-robin deal hands lane 0 the largest pair of
  // every stripe of the descending order; the boustrophedon (snake) deal
  // must tighten the per-lane cell spread on a skewed batch. Lengths are
  // continuous (no repeated sizes) so stripes are genuinely unequal.
  auto batch = saloba::testing::imbalanced_batch(408, 64, 50, 1500);
  const int devices = 4;
  auto order = shard_order(batch, SplitPolicy::kSorted);

  // The old round-robin per-lane totals, reconstructed from the order.
  std::vector<std::uint64_t> rr(devices, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rr[i % devices] += batch.queries[order[i]].size() * batch.refs[order[i]].size();
  }
  std::vector<std::uint64_t> snake(devices, 0);
  for (const Shard& s : make_shards(batch, devices, SplitPolicy::kSorted)) {
    snake[static_cast<std::size_t>(s.lane)] += s.batch.total_cells();
  }

  auto spread = [](const std::vector<std::uint64_t>& v) {
    auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return *hi - *lo;
  };
  EXPECT_LT(spread(snake), spread(rr));
}

TEST(MultiDevice, UniformWeightsMatchUnweightedBitForBit) {
  auto batch = saloba::testing::imbalanced_batch(409, 41, 10, 400);
  for (std::size_t cap : {std::size_t{0}, std::size_t{7}}) {
    for (auto policy : {SplitPolicy::kStatic, SplitPolicy::kSorted}) {
      auto plain = make_shards(batch, 3, policy, cap);
      auto weighted = make_shards(batch, std::vector<double>{2.0, 2.0, 2.0}, policy, cap);
      ASSERT_EQ(weighted.size(), plain.size());
      for (std::size_t s = 0; s < plain.size(); ++s) {
        EXPECT_EQ(weighted[s].lane, plain[s].lane) << "cap=" << cap;
        EXPECT_EQ(weighted[s].indices, plain[s].indices) << "cap=" << cap;
      }
    }
  }
}

TEST(MultiDevice, SkewedWeightsShiftLoadTowardTheHeavyLane) {
  auto batch = saloba::testing::imbalanced_batch(410, 48, 50, 400);
  const std::vector<double> weights{1.0, 3.0};
  for (std::size_t cap : {std::size_t{0}, std::size_t{4}}) {
    std::vector<std::uint64_t> lane_cells(2, 0);
    for (const Shard& s : make_shards(batch, weights, SplitPolicy::kSorted, cap)) {
      lane_cells[static_cast<std::size_t>(s.lane)] += s.batch.total_cells();
    }
    // The 3x lane must take clearly more than half — and roughly its
    // proportional share of — the work.
    EXPECT_GT(lane_cells[1], 2 * lane_cells[0]) << "cap=" << cap;
  }
}

TEST(MultiDevice, WeightedLptLowersWeightedMakespanOnSkewedWeights) {
  // With per-lane service rates {1, 4}, the weighted finish time of the
  // weighted partition must beat the uniform partition's.
  auto batch = saloba::testing::imbalanced_batch(411, 60, 20, 600);
  const std::vector<double> weights{1.0, 4.0};
  auto weighted_makespan = [&](const std::vector<Shard>& shards) {
    std::vector<double> finish(weights.size(), 0.0);
    for (const Shard& s : shards) {
      finish[static_cast<std::size_t>(s.lane)] +=
          static_cast<double>(s.batch.total_cells()) / weights[static_cast<std::size_t>(s.lane)];
    }
    return *std::max_element(finish.begin(), finish.end());
  };
  double uniform = weighted_makespan(
      make_shards(batch, std::vector<double>{1.0, 1.0}, SplitPolicy::kSorted, 5));
  double weighted = weighted_makespan(make_shards(batch, weights, SplitPolicy::kSorted, 5));
  EXPECT_LT(weighted, uniform);
}

TEST(MultiDevice, DispatchAccumulatesLaneTimesAcrossShards) {
  // With a shard cap a device owns several shards; its reported time is the
  // sum over them (the pre-fix code overwrote, keeping only the last).
  auto batch = saloba::testing::imbalanced_batch(412, 24, 30, 300);
  auto r = dispatch_shards(batch, 2, SplitPolicy::kSorted, area_runner, 3);
  double sum = 0.0;
  for (double ms : r.shard_ms) sum += ms;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(batch.total_cells()));
  EXPECT_EQ(r.busy_devices, 2);
}

TEST(MultiDevice, DispatchImbalanceCountsIdleDevices) {
  // One pair over four devices: three devices idle. The old busy-lane
  // normalization reported a perfect 1.0 here.
  seq::PairBatch one;
  util::Xoshiro256 rng(413);
  one.add(saloba::testing::random_seq(rng, 80), saloba::testing::random_seq(rng, 90));
  auto r = dispatch_shards(one, 4, SplitPolicy::kSorted, area_runner);
  EXPECT_EQ(r.busy_devices, 1);
  EXPECT_DOUBLE_EQ(r.imbalance, 4.0);
}

TEST(MultiDeviceDeath, RejectsZeroDevices) {
  auto batch = saloba::testing::imbalanced_batch(407, 4, 10, 50);
  EXPECT_DEATH(dispatch_shards(batch, 0, SplitPolicy::kStatic, area_runner), "at least one");
}

TEST(MultiDeviceDeath, RejectsEmptyOrNonPositiveWeights) {
  auto batch = saloba::testing::imbalanced_batch(414, 4, 10, 50);
  EXPECT_DEATH(make_shards(batch, std::vector<double>{}, SplitPolicy::kSorted),
               "at least one");
  EXPECT_DEATH(make_shards(batch, std::vector<double>{1.0, 0.0}, SplitPolicy::kSorted),
               "positive");
}

}  // namespace
}  // namespace saloba::gpusim
