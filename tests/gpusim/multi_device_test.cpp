#include "gpusim/multi_device.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"

namespace saloba::gpusim {
namespace {

// A fake shard runner whose "time" is the shard's total DP area.
double area_runner(const seq::PairBatch& shard) {
  return static_cast<double>(shard.total_cells());
}

TEST(MultiDevice, SingleDeviceGetsEverything) {
  auto batch = saloba::testing::imbalanced_batch(401, 30, 10, 200);
  auto r = dispatch_shards(batch, 1, SplitPolicy::kStatic, area_runner);
  ASSERT_EQ(r.shard_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(r.makespan_ms, static_cast<double>(batch.total_cells()));
  EXPECT_DOUBLE_EQ(r.imbalance, 1.0);
}

TEST(MultiDevice, ShardsPartitionTheBatch) {
  auto batch = saloba::testing::imbalanced_batch(402, 41, 10, 100);
  double total = 0;
  auto r = dispatch_shards(batch, 4, SplitPolicy::kStatic,
                           [&](const seq::PairBatch& shard) {
                             total += static_cast<double>(shard.total_cells());
                             return area_runner(shard);
                           });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(batch.total_cells()));
  EXPECT_EQ(r.shard_ms.size(), 4u);
}

TEST(MultiDevice, SortedOrderIsByAreaDescending) {
  auto batch = saloba::testing::imbalanced_batch(403, 25, 5, 300);
  auto order = shard_order(batch, SplitPolicy::kSorted);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(batch.queries[order[i - 1]].size() * batch.refs[order[i - 1]].size(),
              batch.queries[order[i]].size() * batch.refs[order[i]].size());
  }
}

TEST(MultiDevice, SortedSplitBalancesBetterThanStatic) {
  // Heavy-tailed workload: static round-robin can stack big jobs on one
  // shard; sorted round-robin deals them out evenly.
  util::Xoshiro256 rng(404);
  seq::PairBatch batch;
  for (int i = 0; i < 64; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 2000 : 50;
    batch.add(saloba::testing::random_seq(rng, len), saloba::testing::random_seq(rng, len));
  }
  auto statik = dispatch_shards(batch, 4, SplitPolicy::kStatic, area_runner);
  auto sorted = dispatch_shards(batch, 4, SplitPolicy::kSorted, area_runner);
  EXPECT_LE(sorted.makespan_ms, statik.makespan_ms);
  EXPECT_LE(sorted.imbalance, statik.imbalance + 1e-9);
}

TEST(MultiDevice, MoreDevicesNeverIncreaseMakespan) {
  auto batch = saloba::testing::imbalanced_batch(405, 48, 20, 400);
  double prev = dispatch_shards(batch, 1, SplitPolicy::kSorted, area_runner).makespan_ms;
  for (int k : {2, 3, 4}) {
    double cur = dispatch_shards(batch, k, SplitPolicy::kSorted, area_runner).makespan_ms;
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(MultiDevice, MoreDevicesThanJobs) {
  auto batch = saloba::testing::imbalanced_batch(406, 3, 10, 50);
  auto r = dispatch_shards(batch, 8, SplitPolicy::kStatic, area_runner);
  EXPECT_EQ(r.shard_ms.size(), 8u);
  int busy = 0;
  for (double ms : r.shard_ms) busy += ms > 0;
  EXPECT_EQ(busy, 3);
}

TEST(MultiDeviceDeath, RejectsZeroDevices) {
  auto batch = saloba::testing::imbalanced_batch(407, 4, 10, 50);
  EXPECT_DEATH(dispatch_shards(batch, 0, SplitPolicy::kStatic, area_runner), "at least one");
}

}  // namespace
}  // namespace saloba::gpusim
