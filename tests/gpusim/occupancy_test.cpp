#include "gpusim/occupancy.hpp"

#include <gtest/gtest.h>

namespace saloba::gpusim {
namespace {

TEST(Occupancy, ThreadLimited) {
  DeviceSpec spec = DeviceSpec::gtx1650();  // 1024 threads/SM
  Occupancy occ = compute_occupancy(spec, 256, 0);
  EXPECT_EQ(occ.limited_by_threads, 4);
  EXPECT_EQ(occ.blocks_per_sm, 4);
  EXPECT_EQ(occ.warps_per_sm, 32);
}

TEST(Occupancy, SharedMemoryLimited) {
  DeviceSpec spec = DeviceSpec::gtx1650();  // 64 KiB shared/SM
  Occupancy occ = compute_occupancy(spec, 32, 32 << 10);
  EXPECT_EQ(occ.limited_by_shared, 2);
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

TEST(Occupancy, BlockSlotLimited) {
  DeviceSpec spec = DeviceSpec::gtx1650();  // 16 blocks/SM
  Occupancy occ = compute_occupancy(spec, 32, 0);
  EXPECT_EQ(occ.blocks_per_sm, 16);
  EXPECT_EQ(occ.warps_per_sm, 16);
}

TEST(Occupancy, WarpOccupancyFraction) {
  DeviceSpec spec = DeviceSpec::rtx3090();  // 1536 threads/SM -> 48 warps
  Occupancy occ = compute_occupancy(spec, 128, 0);
  EXPECT_EQ(occ.blocks_per_sm, 12);
  EXPECT_NEAR(occ.warp_occupancy(spec), 1.0, 1e-12);
}

TEST(Occupancy, SalobaSharedFootprintFitsWell) {
  // SALoBa: 4 warps/block, 2 KiB shared per warp = 8 KiB per block.
  DeviceSpec spec = DeviceSpec::gtx1650();
  Occupancy occ = compute_occupancy(spec, 128, 8 << 10);
  EXPECT_GE(occ.blocks_per_sm, 8);  // shared memory is not the bottleneck
}

TEST(OccupancyDeath, RejectsNonWarpMultiple) {
  DeviceSpec spec = DeviceSpec::gtx1650();
  EXPECT_DEATH(compute_occupancy(spec, 48, 0), "multiple of the warp size");
}

TEST(OccupancyDeath, RejectsOversizedSharedRequest) {
  DeviceSpec spec = DeviceSpec::gtx1650();
  EXPECT_DEATH(compute_occupancy(spec, 128, 1 << 20), "shared memory");
}

TEST(DeviceSpecs, PaperRatioHolds) {
  // Sec. V-C: RTX3090 38.91 FLOPS/B vs GTX1650 23.82 FLOPS/B.
  EXPECT_NEAR(DeviceSpec::rtx3090().flops_per_byte(), 38.0, 1.5);
  EXPECT_NEAR(DeviceSpec::gtx1650().flops_per_byte(), 23.3, 1.5);
  EXPECT_GT(DeviceSpec::rtx3090().flops_per_byte(), DeviceSpec::gtx1650().flops_per_byte());
}

TEST(DeviceSpecs, GranularityMatchesTableOne) {
  EXPECT_EQ(DeviceSpec::pascal_p100().mem_access_granularity, 128);
  EXPECT_EQ(DeviceSpec::volta_v100().mem_access_granularity, 32);
  EXPECT_EQ(DeviceSpec::gtx1650().mem_access_granularity, 32);
  EXPECT_EQ(DeviceSpec::rtx3090().mem_access_granularity, 32);
}

}  // namespace
}  // namespace saloba::gpusim
