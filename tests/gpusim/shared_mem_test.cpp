#include "gpusim/shared_mem.hpp"

#include <array>

#include <gtest/gtest.h>

namespace saloba::gpusim {
namespace {

TEST(SharedMem, DistinctBanksAreConflictFree) {
  std::array<SharedAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] = SharedAccess{static_cast<std::uint32_t>(l) * 4, 4};
  }
  EXPECT_EQ(shared_conflict_degree(acc), 1);
}

TEST(SharedMem, SameWordBroadcasts) {
  std::array<SharedAccess, 32> acc{};
  for (auto& a : acc) a = SharedAccess{64, 4};
  EXPECT_EQ(shared_conflict_degree(acc), 1);
}

TEST(SharedMem, SameBankDifferentWordsConflict) {
  // Words 0 and 32 share bank 0.
  std::array<SharedAccess, 32> acc{};
  acc[0] = SharedAccess{0, 4};
  acc[1] = SharedAccess{32 * 4, 4};
  EXPECT_EQ(shared_conflict_degree(acc), 2);
}

TEST(SharedMem, StrideOf32WordsIsWorstCase) {
  std::array<SharedAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] =
        SharedAccess{static_cast<std::uint32_t>(l) * 32 * 4, 4};
  }
  EXPECT_EQ(shared_conflict_degree(acc), 32);
}

TEST(SharedMem, EightByteAccessSpansTwoBanks) {
  std::array<SharedAccess, 32> acc{};
  acc[0] = SharedAccess{0, 8};   // banks 0,1
  acc[1] = SharedAccess{4, 4};   // bank 1, same word as lane 0's second half? no: word 1
  EXPECT_EQ(shared_conflict_degree(acc), 1);  // word 1 shared -> broadcast
}

TEST(SharedMem, StrideOfEightWordsConflictsFourWay) {
  // Lanes 0,4,8,... hit the same bank with distinct words.
  std::array<SharedAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] =
        SharedAccess{static_cast<std::uint32_t>(l) * 8 * 4, 4};
  }
  EXPECT_EQ(shared_conflict_degree(acc), 8);
}

TEST(SharedMem, InactiveLanesIgnored) {
  std::array<SharedAccess, 32> acc{};
  EXPECT_EQ(shared_conflict_degree(acc), 1);  // clamped minimum
}

}  // namespace
}  // namespace saloba::gpusim
