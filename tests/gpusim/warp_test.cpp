#include "gpusim/warp.hpp"

#include <array>

#include <gtest/gtest.h>

namespace saloba::gpusim {
namespace {

TEST(Warp, IssueCountsSlotsAndLanes) {
  WarpContext warp(32, 32);
  warp.issue(10, 32);
  warp.issue(5, 8);  // divergent: only 8 lanes active, slots still burn
  EXPECT_EQ(warp.counters().instructions, 15u);
  EXPECT_EQ(warp.counters().active_lane_ops, 10u * 32 + 5u * 8);
  EXPECT_NEAR(warp.counters().lane_utilization(32), (320.0 + 40.0) / (15 * 32), 1e-12);
}

TEST(Warp, GlobalReadAccountsTransactions) {
  WarpContext warp(32, 32);
  std::array<MemAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] = MemAccess{static_cast<std::uint64_t>(l) * 4096, 4};
  }
  warp.global_read(acc);
  EXPECT_EQ(warp.counters().global_requests, 1u);
  EXPECT_EQ(warp.counters().global_transactions, 32u);
  EXPECT_EQ(warp.counters().global_bytes_moved, 1024u);
  EXPECT_EQ(warp.counters().global_bytes_useful, 128u);
  EXPECT_EQ(warp.counters().instructions, 1u);
}

TEST(Warp, CachedReadChargesIdealTransactions) {
  WarpContext warp(32, 32);
  std::array<MemAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] = MemAccess{static_cast<std::uint64_t>(l) * 4096, 4};
  }
  warp.global_read_cached(acc);
  EXPECT_EQ(warp.counters().global_transactions, 4u);  // 128 B / 32 B
  EXPECT_EQ(warp.counters().global_bytes_moved, 128u);
}

TEST(Warp, SharedAccessAccumulatesConflictCycles) {
  WarpContext warp(32, 32);
  std::array<SharedAccess, 32> acc{};
  for (int l = 0; l < 32; ++l) {
    acc[static_cast<std::size_t>(l)] = SharedAccess{static_cast<std::uint32_t>(l) * 4, 4};
  }
  warp.shared_access(acc);  // conflict-free
  EXPECT_EQ(warp.counters().shared_conflict_cycles, 0u);
  std::array<SharedAccess, 32> bad{};
  for (int l = 0; l < 32; ++l) {
    bad[static_cast<std::size_t>(l)] = SharedAccess{static_cast<std::uint32_t>(l) * 128, 4};
  }
  warp.shared_access(bad);  // 32-way conflict
  EXPECT_EQ(warp.counters().shared_conflict_cycles, 31u);
  EXPECT_EQ(warp.counters().shared_requests, 2u);
}

TEST(Warp, SyncCounts) {
  WarpContext warp(32, 32);
  warp.sync();
  warp.sync();
  EXPECT_EQ(warp.counters().syncs, 2u);
}

TEST(Warp, CellsTracked) {
  WarpContext warp(32, 32);
  warp.add_cells(64);
  warp.add_cells(64);
  EXPECT_EQ(warp.counters().dp_cells, 128u);
}

TEST(WarpCounters, MergeSumsFields) {
  WarpCounters a, b;
  a.instructions = 10;
  a.global_bytes_moved = 100;
  b.instructions = 5;
  b.global_bytes_moved = 50;
  a.merge(b);
  EXPECT_EQ(a.instructions, 15u);
  EXPECT_EQ(a.global_bytes_moved, 150u);
}

TEST(KernelStats, SummaryMentionsKeyCounters) {
  KernelStats stats;
  stats.totals.instructions = 42;
  stats.warps = 7;
  std::string s = stats.summary(32);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("warps=7"), std::string::npos);
}

}  // namespace
}  // namespace saloba::gpusim
