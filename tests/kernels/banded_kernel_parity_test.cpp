// Banded-extension conformance (Sec. VII-B), kernel level: every registered
// simulated kernel must honor the batch's per-pair band channel with the
// shared out-of-band semantics (H = 0, E/F = -inf) — bit-identical to
// align::smith_waterman_banded at the same band, bit-identical to its own
// full-table run whenever the band covers the table, and with DP-cell
// accounting that splits the nominal |q|·|r| table exactly into dp_cells
// (computed) + dp_cells_skipped (pruned).
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "kernels/block_dp.hpp"
#include "kernels/kernel_iface.hpp"
#include "seq/alphabet.hpp"

namespace saloba::kernels {
namespace {

using align::ScoringScheme;

std::vector<align::AlignmentResult> banded_reference(const seq::PairBatch& batch,
                                                     const ScoringScheme& s) {
  std::vector<align::AlignmentResult> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out[i] = align::smith_waterman_banded(batch.refs[i], batch.queries[i], s,
                                          align::BandedParams{batch.band_of(i), 0})
                 .result;
  }
  return out;
}

/// Randomized ragged batch with a per-pair band mixing every width class.
seq::PairBatch ragged_banded_batch(std::uint64_t seed, std::size_t pairs,
                                   std::size_t max_len) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t p = 0; p < pairs; ++p) {
    std::size_t rlen = 1 + rng.below(max_len);
    std::size_t qlen = 1 + rng.below(max_len);
    auto ref = saloba::testing::random_seq(rng, rlen);
    auto query = saloba::testing::random_seq(rng, qlen);
    std::size_t band = 1 + rng.below(std::max(rlen, qlen) + 16);
    batch.add(std::move(query), std::move(ref), band);
  }
  return batch;
}

class BandedKernelParity : public ::testing::TestWithParam<std::string> {};

TEST_P(BandedKernelParity, RandomBandsMatchBandedReference) {
  auto kernel = make_kernel(GetParam());
  ScoringScheme s;
  for (std::uint64_t seed : {9001u, 9002u}) {
    auto batch = ragged_banded_batch(seed, 30, 180);
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = kernel->run(dev, batch, s);
    auto expected = banded_reference(batch, s);
    ASSERT_EQ(result.results.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.results[i], expected[i])
          << kernel->info().name << " seed " << seed << " pair " << i << " band "
          << batch.band_of(i);
    }
  }
}

TEST_P(BandedKernelParity, UniformBandMatrixMatchesBandedReference) {
  // The ISSUE's band matrix: every kernel checked under band in
  // {1, 8, 32, huge} on a related (realistic-scoring) batch.
  auto kernel = make_kernel(GetParam());
  ScoringScheme s;
  auto base = saloba::testing::related_batch(9100, 14, 96, 130);
  for (std::size_t band : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                           std::size_t{100000}}) {
    seq::PairBatch batch = base;
    batch.default_band = band;
    gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
    auto result = kernel->run(dev, batch, s);
    auto expected = banded_reference(batch, s);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.results[i], expected[i])
          << kernel->info().name << " band " << band << " pair " << i;
    }
  }
}

TEST_P(BandedKernelParity, CoveringBandIsBitIdenticalToFullTableRun) {
  auto kernel = make_kernel(GetParam());
  ScoringScheme s;
  auto full_batch = saloba::testing::imbalanced_batch(9200, 25, 2, 140);
  seq::PairBatch banded_batch = full_batch;
  banded_batch.default_band =
      std::max(full_batch.max_ref_len(), full_batch.max_query_len());

  gpusim::Device dev_full(gpusim::DeviceSpec::gtx1650());
  auto full = kernel->run(dev_full, full_batch, s);
  gpusim::Device dev_banded(gpusim::DeviceSpec::gtx1650());
  auto banded = kernel->run(dev_banded, banded_batch, s);
  for (std::size_t i = 0; i < full_batch.size(); ++i) {
    EXPECT_EQ(banded.results[i], full.results[i]) << kernel->info().name << " pair " << i;
  }
}

TEST_P(BandedKernelParity, CellAccountingSplitsTheTableExactly) {
  auto kernel = make_kernel(GetParam());
  ScoringScheme s;
  auto batch = ragged_banded_batch(9300, 20, 150);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto result = kernel->run(dev, batch, s);
  EXPECT_EQ(result.stats.totals.dp_cells, batch.total_banded_cells())
      << kernel->info().name;
  EXPECT_EQ(result.stats.totals.dp_cells + result.stats.totals.dp_cells_skipped,
            batch.total_cells())
      << kernel->info().name;
}

TEST_P(BandedKernelParity, BandedEmptySequencesAreHarmless) {
  auto kernel = make_kernel(GetParam());
  ScoringScheme s;
  seq::PairBatch batch;
  batch.add({}, seq::encode_string("ACGT"), 2);
  batch.add(seq::encode_string("ACGT"), {}, 2);
  batch.add(seq::encode_string("GATTACA"), seq::encode_string("GATTACA"), 1);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto result = kernel->run(dev, batch, s);
  EXPECT_EQ(result.results[0], align::AlignmentResult{}) << kernel->info().name;
  EXPECT_EQ(result.results[1], align::AlignmentResult{}) << kernel->info().name;
  EXPECT_EQ(result.results[2].score, 7) << kernel->info().name;
}

std::string param_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredKernels, BandedKernelParity,
                         ::testing::ValuesIn(kernel_names()), param_name);

// --- block-level banded primitives ----------------------------------------

TEST(BlockIntersectsBand, Geometry) {
  // band 0 = unbanded keeps every block.
  EXPECT_TRUE(block_intersects_band(1000, 0, 8, 8, 0));
  // Block spanning the diagonal.
  EXPECT_TRUE(block_intersects_band(16, 16, 8, 8, 1));
  // Block just above the band (j - i too large) and just inside.
  EXPECT_FALSE(block_intersects_band(0, 16, 8, 8, 8));
  EXPECT_TRUE(block_intersects_band(0, 16, 8, 8, 9));
  // Block just below the band (i - j too large) and just inside.
  EXPECT_FALSE(block_intersects_band(16, 0, 8, 8, 8));
  EXPECT_TRUE(block_intersects_band(16, 0, 8, 8, 9));
  // Ragged blocks: a 1x1 block at (i, j) is in band iff |i - j| <= band.
  EXPECT_TRUE(block_intersects_band(10, 7, 1, 1, 3));
  EXPECT_FALSE(block_intersects_band(11, 7, 1, 1, 3));
}

TEST(BlockDpBanded, ZeroBandDelegatesToFullBlock) {
  util::Xoshiro256 rng(9400);
  auto ref = saloba::testing::random_seq(rng, 8);
  auto query = saloba::testing::random_seq(rng, 8);
  ScoringScheme s;
  BlockBoundary in = BlockBoundary::table_edge();
  BlockOutput full_out, banded_out;
  block_dp(ref.data(), query.data(), 8, 8, 0, 0, in, s, full_out);
  std::uint64_t computed =
      block_dp_banded(ref.data(), query.data(), 8, 8, 0, 0, 0, in, s, banded_out);
  EXPECT_EQ(computed, 64u);
  EXPECT_EQ(banded_out.best, full_out.best);
  for (int k = 0; k < kBlockDim; ++k) {
    EXPECT_EQ(banded_out.bottom_h[k], full_out.bottom_h[k]);
    EXPECT_EQ(banded_out.right_h[k], full_out.right_h[k]);
  }
}

}  // namespace
}  // namespace saloba::kernels
