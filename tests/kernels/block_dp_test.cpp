#include "kernels/block_dp.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"

namespace saloba::kernels {
namespace {

using align::ScoringScheme;

TEST(BlockDp, SingleBlockEqualsReferenceOnSmallInputs) {
  util::Xoshiro256 rng(81);
  ScoringScheme s;
  for (int trial = 0; trial < 50; ++trial) {
    int rh = 1 + static_cast<int>(rng.below(8));
    int qw = 1 + static_cast<int>(rng.below(8));
    auto ref = saloba::testing::random_seq(rng, static_cast<std::size_t>(rh));
    auto query = saloba::testing::random_seq(rng, static_cast<std::size_t>(qw));

    BlockOutput out;
    block_dp(ref.data(), query.data(), rh, qw, 0, 0, BlockBoundary::table_edge(), s, out);
    auto expected = align::smith_waterman(ref, query, s);
    EXPECT_EQ(out.best.score, expected.score);
    if (expected.score > 0) {
      EXPECT_EQ(out.best.ref_end, expected.ref_end);
      EXPECT_EQ(out.best.query_end, expected.query_end);
    }
  }
}

// Tile a bigger table with 8x8 blocks, threading boundaries exactly as the
// kernels do, and compare every output surface against the full matrix.
TEST(BlockDp, TiledGridReproducesFullTable) {
  util::Xoshiro256 rng(82);
  ScoringScheme s;
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t n = 8 + rng.below(41);  // 8..48 rows
    std::size_t m = 8 + rng.below(41);
    auto ref = saloba::testing::random_seq(rng, n);
    auto query = saloba::testing::mutate(
        rng, saloba::testing::random_seq(rng, std::max(n, m)), 0.0);
    query.resize(m);

    const std::size_t strips = (n + 7) / 8;
    const std::size_t words = (m + 7) / 8;
    std::vector<align::Score> row_h(m, 0), row_f(m, kBoundaryNegInf);
    align::AlignmentResult best;

    for (std::size_t st = 0; st < strips; ++st) {
      align::Score left_h[8], left_e[8];
      for (int k = 0; k < 8; ++k) {
        left_h[k] = 0;
        left_e[k] = kBoundaryNegInf;
      }
      align::Score diag = 0;
      for (std::size_t w = 0; w < words; ++w) {
        std::size_t i0 = st * 8, j0 = w * 8;
        int rh = static_cast<int>(std::min<std::size_t>(8, n - i0));
        int qw = static_cast<int>(std::min<std::size_t>(8, m - j0));
        BlockBoundary bound;
        for (int k = 0; k < qw; ++k) {
          bound.top_h[k] = st == 0 ? 0 : row_h[j0 + static_cast<std::size_t>(k)];
          bound.top_f[k] = st == 0 ? kBoundaryNegInf : row_f[j0 + static_cast<std::size_t>(k)];
        }
        for (int k = 0; k < rh; ++k) {
          bound.left_h[k] = left_h[k];
          bound.left_e[k] = left_e[k];
        }
        bound.diag_h = diag;
        diag = (st == 0 || j0 + 8 > m) ? 0 : row_h[j0 + 7];

        BlockOutput out;
        block_dp(ref.data() + i0, query.data() + j0, rh, qw, i0, j0, bound, s, out);
        align::take_better(best, out.best);
        for (int k = 0; k < qw; ++k) {
          row_h[j0 + static_cast<std::size_t>(k)] = out.bottom_h[k];
          row_f[j0 + static_cast<std::size_t>(k)] = out.bottom_f[k];
        }
        for (int k = 0; k < rh; ++k) {
          left_h[k] = out.right_h[k];
          left_e[k] = out.right_e[k];
        }
      }
    }
    auto expected = align::smith_waterman(ref, query, s);
    if (best.score == 0) best = align::AlignmentResult{};
    EXPECT_EQ(best, expected) << "n=" << n << " m=" << m;
  }
}

TEST(BlockDp, BottomRowMatchesMatrixRow) {
  util::Xoshiro256 rng(83);
  ScoringScheme s;
  auto ref = saloba::testing::random_seq(rng, 8);
  auto query = saloba::testing::random_seq(rng, 8);
  BlockOutput out;
  block_dp(ref.data(), query.data(), 8, 8, 0, 0, BlockBoundary::table_edge(), s, out);
  auto h = align::smith_waterman_matrix(ref, query, s);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(out.bottom_h[k], h[8 * 9 + static_cast<std::size_t>(k) + 1]);
  }
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(out.right_h[k], h[(static_cast<std::size_t>(k) + 1) * 9 + 8]);
  }
}

TEST(BlockDp, TableEdgeBoundary) {
  BlockBoundary b = BlockBoundary::table_edge();
  for (int k = 0; k < kBlockDim; ++k) {
    EXPECT_EQ(b.top_h[k], 0);
    EXPECT_EQ(b.top_f[k], kBoundaryNegInf);
    EXPECT_EQ(b.left_h[k], 0);
    EXPECT_EQ(b.left_e[k], kBoundaryNegInf);
  }
  EXPECT_EQ(b.diag_h, 0);
}

}  // namespace
}  // namespace saloba::kernels
