// Determinism: repeated runs of any kernel over the same batch must produce
// identical results *and* identical counters, regardless of host-parallel
// execution order — the property that makes simulated figures reproducible.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "kernels/kernel_iface.hpp"

namespace saloba::kernels {
namespace {

class KernelDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelDeterminism, ResultsAndCountersStable) {
  auto batch = saloba::testing::imbalanced_batch(171, 48, 10, 400);
  align::ScoringScheme s;
  auto kernel = make_kernel(GetParam());

  gpusim::Device d1(gpusim::DeviceSpec::gtx1650());
  auto a = kernel->run(d1, batch, s);
  gpusim::Device d2(gpusim::DeviceSpec::gtx1650());
  auto b = kernel->run(d2, batch, s);

  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.stats.totals.instructions, b.stats.totals.instructions);
  EXPECT_EQ(a.stats.totals.global_transactions, b.stats.totals.global_transactions);
  EXPECT_EQ(a.stats.totals.global_bytes_moved, b.stats.totals.global_bytes_moved);
  EXPECT_EQ(a.stats.totals.shared_requests, b.stats.totals.shared_requests);
  EXPECT_EQ(a.stats.totals.dp_cells, b.stats.totals.dp_cells);
  EXPECT_DOUBLE_EQ(a.time.total_ms, b.time.total_ms);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelDeterminism,
                         ::testing::Values("gasal2", "nvbio", "soap3-dp", "cushaw2-gpu",
                                           "sw#", "adept", "saloba", "saloba-sw16",
                                           "saloba-intra"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(KernelTimeModel, TimeScalesWithWork) {
  // Twice the pairs => roughly twice the compute-bound time.
  align::ScoringScheme s;
  auto small = saloba::testing::related_batch(172, 64, 256, 256);
  auto large = saloba::testing::related_batch(172, 128, 256, 256);
  auto kernel = make_kernel("saloba");
  gpusim::Device d1(gpusim::DeviceSpec::rtx3090());
  double t_small = kernel->run(d1, small, s).time.total_ms;
  gpusim::Device d2(gpusim::DeviceSpec::rtx3090());
  double t_large = kernel->run(d2, large, s).time.total_ms;
  EXPECT_GT(t_large, t_small * 1.5);
  EXPECT_LT(t_large, t_small * 2.6);
}

TEST(KernelTimeModel, FasterDeviceIsFaster) {
  align::ScoringScheme s;
  auto batch = saloba::testing::related_batch(173, 128, 512, 512);
  for (const char* name : {"gasal2", "saloba", "adept"}) {
    auto kernel = make_kernel(name);
    gpusim::Device slow(gpusim::DeviceSpec::gtx1650());
    gpusim::Device fast(gpusim::DeviceSpec::rtx3090());
    double t_slow = kernel->run(slow, batch, s).time.total_ms;
    double t_fast = kernel->run(fast, batch, s).time.total_ms;
    EXPECT_LT(t_fast, t_slow) << name;
  }
}

}  // namespace
}  // namespace saloba::kernels
