// The central verification suite: every simulated kernel must produce
// exactly the CPU reference's (score, ref_end, query_end) for every pair —
// the property that makes the performance counters trustworthy.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "kernels/kernel_iface.hpp"

namespace saloba::kernels {
namespace {

using align::ScoringScheme;

std::vector<align::AlignmentResult> reference_results(const seq::PairBatch& batch,
                                                      const ScoringScheme& s) {
  std::vector<align::AlignmentResult> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out[i] = align::smith_waterman(batch.refs[i], batch.queries[i], s);
  }
  return out;
}

struct Case {
  const char* kernel;
  std::size_t len;
};

class KernelEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(KernelEquivalence, EqualLengthBatchMatchesReference) {
  auto param = GetParam();
  auto kernel = make_kernel(param.kernel);
  if (param.len > kernel->info().max_len) GTEST_SKIP() << "beyond structural limit";

  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  ScoringScheme s;
  auto batch = saloba::testing::related_batch(1000 + param.len, 40, param.len, param.len);
  auto result = kernel->run(dev, batch, s);
  auto expected = reference_results(batch, s);
  ASSERT_EQ(result.results.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.results[i], expected[i]) << kernel->info().name << " pair " << i;
  }
}

TEST_P(KernelEquivalence, UnequalAndRaggedLengthsMatchReference) {
  auto param = GetParam();
  auto kernel = make_kernel(param.kernel);
  if (param.len > kernel->info().max_len) GTEST_SKIP() << "beyond structural limit";

  gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
  ScoringScheme s;
  // Ragged batch: lengths vary from tiny up to `len` (the imbalance shape).
  auto batch = saloba::testing::imbalanced_batch(2000 + param.len, 50, 3, param.len);
  auto result = kernel->run(dev, batch, s);
  auto expected = reference_results(batch, s);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.results[i], expected[i]) << kernel->info().name << " pair " << i;
  }
}

TEST_P(KernelEquivalence, BandedBatchMatchesBandedReference) {
  // Banded variant of the matrix (Sec. VII-B): the same ragged batch under
  // band ∈ {1, 8, 32, huge} must match align::smith_waterman_banded at the
  // same band for every kernel — and the huge band, covering every table,
  // must also reproduce the full-table reference.
  auto param = GetParam();
  auto kernel = make_kernel(param.kernel);
  if (param.len > kernel->info().max_len) GTEST_SKIP() << "beyond structural limit";

  ScoringScheme s;
  auto batch = saloba::testing::imbalanced_batch(4000 + param.len, 20, 3, param.len);
  auto full = reference_results(batch, s);
  for (std::size_t band : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                           std::size_t{1} << 20}) {
    seq::PairBatch banded_batch = batch;
    banded_batch.default_band = band;
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = kernel->run(dev, banded_batch, s);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto expected = align::smith_waterman_banded(batch.refs[i], batch.queries[i], s,
                                                   align::BandedParams{band, 0})
                          .result;
      EXPECT_EQ(result.results[i], expected)
          << kernel->info().name << " band " << band << " pair " << i;
      if (band >= std::max(batch.refs[i].size(), batch.queries[i].size())) {
        EXPECT_EQ(result.results[i], full[i])
            << kernel->info().name << " huge band, pair " << i;
      }
    }
  }
}

constexpr const char* kAllKernels[] = {"gasal2",      "nvbio",      "soap3-dp",
                                       "cushaw2-gpu", "sw#",        "adept",
                                       "saloba",      "saloba-intra", "saloba-lazy",
                                       "saloba-sw16", "saloba-sw32"};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const char* k : kAllKernels) {
    for (std::size_t len : {7u, 16u, 33u, 64u, 129u, 250u, 300u}) {
      cases.push_back(Case{k, len});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.kernel;
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_len" + std::to_string(info.param.len);
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllLengths, KernelEquivalence,
                         ::testing::ValuesIn(all_cases()), case_name);

// N handling: 4-bit and 8-bit kernels must be exact even with N bases;
// 2-bit kernels legitimately differ (they substitute N) but must never
// exceed the substituted-sequence reference.
TEST(KernelNHandling, ExactKernelsHandleN) {
  ScoringScheme s;
  auto batch = saloba::testing::related_batch(3000, 30, 90, 120, /*with_n=*/true);
  auto expected = reference_results(batch, s);
  for (const char* name : {"gasal2", "nvbio", "sw#", "adept", "saloba"}) {
    auto kernel = make_kernel(name);
    ASSERT_TRUE(kernel->info().exact_with_n);
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = kernel->run(dev, batch, s);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.results[i], expected[i]) << name << " pair " << i;
    }
  }
}

TEST(KernelNHandling, TwoBitKernelsMatchSubstitutedReference) {
  ScoringScheme s;
  auto batch = saloba::testing::related_batch(3001, 20, 80, 100, /*with_n=*/true);
  // Build the substituted batch (N -> A) the 2-bit kernels actually align.
  seq::PairBatch subst = batch;
  for (auto* seqs : {&subst.queries, &subst.refs}) {
    for (auto& v : *seqs) {
      for (auto& b : v) {
        if (b == seq::kBaseN) b = seq::kBaseA;
      }
    }
  }
  auto expected = reference_results(subst, s);
  for (const char* name : {"soap3-dp", "cushaw2-gpu"}) {
    auto kernel = make_kernel(name);
    ASSERT_FALSE(kernel->info().exact_with_n);
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = kernel->run(dev, batch, s);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.results[i], expected[i]) << name << " pair " << i;
    }
  }
}

TEST(KernelEdgeCases, EmptySequencesYieldEmptyAlignments) {
  ScoringScheme s;
  seq::PairBatch batch;
  batch.add({}, seq::encode_string("ACGT"));
  batch.add(seq::encode_string("ACGT"), {});
  batch.add(seq::encode_string("GATTACA"), seq::encode_string("GATTACA"));
  for (const char* name : {"gasal2", "saloba", "adept", "sw#"}) {
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = make_kernel(name)->run(dev, batch, s);
    EXPECT_EQ(result.results[0], align::AlignmentResult{}) << name;
    EXPECT_EQ(result.results[1], align::AlignmentResult{}) << name;
    EXPECT_EQ(result.results[2].score, 7) << name;
  }
}

TEST(KernelEdgeCases, SinglePairBatch) {
  ScoringScheme s;
  auto batch = saloba::testing::related_batch(3002, 1, 200, 200);
  auto expected = reference_results(batch, s);
  for (const char* name : {"gasal2", "saloba", "saloba-sw16"}) {
    gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
    auto result = make_kernel(name)->run(dev, batch, s);
    EXPECT_EQ(result.results[0], expected[0]) << name;
  }
}

TEST(KernelEdgeCases, NonDefaultScoringScheme) {
  ScoringScheme s;
  s.match = 2;
  s.mismatch = 3;
  s.gap_open = 5;
  s.gap_extend = 2;
  auto batch = saloba::testing::related_batch(3003, 25, 130, 170);
  auto expected = reference_results(batch, s);
  for (const char* name : {"gasal2", "saloba", "adept", "sw#", "nvbio"}) {
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto result = make_kernel(name)->run(dev, batch, s);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.results[i], expected[i]) << name << " pair " << i;
    }
  }
}

TEST(KernelRegistry, AllNamesConstruct) {
  for (const auto& name : kernel_names()) {
    auto k = make_kernel(name);
    ASSERT_NE(k, nullptr);
    EXPECT_FALSE(k->info().name.empty());
  }
}

TEST(KernelRegistry, MakeAllKernelsTableTwoOrder) {
  auto kernels = make_all_kernels();
  ASSERT_EQ(kernels.size(), 7u);
  EXPECT_EQ(kernels.front()->info().name, "SOAP3-dp");
  EXPECT_EQ(kernels.back()->info().name, "SALoBa-sw8");
}

TEST(KernelRegistry, UnknownNameThrowsListingValidNames) {
  try {
    make_kernel("definitely-not-a-kernel");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("unknown kernel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("definitely-not-a-kernel"), std::string::npos) << msg;
    // The message lists every valid name so a typo is self-diagnosing.
    for (const auto& name : kernel_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << " missing from: " << msg;
    }
  }
}

TEST(KernelRegistry, AliasesResolveToTheSameKernel) {
  EXPECT_EQ(make_kernel("soap3dp")->info().name, make_kernel("soap3-dp")->info().name);
  EXPECT_EQ(make_kernel("cushaw2")->info().name, make_kernel("cushaw2-gpu")->info().name);
  EXPECT_EQ(make_kernel("swsharp")->info().name, make_kernel("sw#")->info().name);
}

TEST(KernelRegistry, NamesKeepTableTwoOrder) {
  auto names = kernel_names();
  std::vector<std::string> expected = {"soap3-dp",    "cushaw2-gpu", "nvbio",
                                       "gasal2",      "sw#",         "adept",
                                       "saloba",      "saloba-intra", "saloba-lazy",
                                       "saloba-sw8",  "saloba-sw16", "saloba-sw32"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace saloba::kernels
