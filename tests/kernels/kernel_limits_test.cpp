// Failure modelling: the paper's "fail to run" annotations (Fig. 6, Sec. V)
// must reproduce — ADEPT's structural 1024 bp cap, NVBIO/SOAP3-dp device-
// memory exhaustion at paper-scale batches, SW#'s launch explosion.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "gpusim/device.hpp"
#include "kernels/baselines.hpp"
#include "kernels/kernel_iface.hpp"

namespace saloba::kernels {
namespace {

constexpr std::size_t kPaperBatch = 5000;

TEST(Limits, AdeptRefusesBeyond1024) {
  auto kernel = make_adept_like();
  EXPECT_EQ(kernel->info().max_len, 1024u);
  gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
  auto batch = saloba::testing::related_batch(1, 4, 1030, 1030);
  EXPECT_THROW(kernel->run(dev, batch, align::ScoringScheme{}), KernelUnsupportedError);
}

TEST(Limits, AdeptAccepts1024) {
  auto kernel = make_adept_like();
  gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
  auto batch = saloba::testing::related_batch(2, 2, 1024, 1024);
  EXPECT_NO_THROW(kernel->run(dev, batch, align::ScoringScheme{}));
}

TEST(Limits, NvbioOomAtPaperScaleLongReads) {
  // 5000 pairs x 2048^2 x 2 B staging = ~42 GB > RTX3090's 24 GB.
  auto kernel = make_nvbio_like(kPaperBatch);
  gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
  auto batch = saloba::testing::related_batch(3, 4, 2048, 2048);
  EXPECT_THROW(kernel->run(dev, batch, align::ScoringScheme{}), gpusim::DeviceOomError);
}

TEST(Limits, NvbioOomEarlierOnGtx1650) {
  // 5000 x 1024^2 x 2 B = ~10 GB > 4 GB.
  auto kernel = make_nvbio_like(kPaperBatch);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto batch = saloba::testing::related_batch(4, 4, 1024, 1024);
  EXPECT_THROW(kernel->run(dev, batch, align::ScoringScheme{}), gpusim::DeviceOomError);
}

TEST(Limits, NvbioRunsAtShortLengths) {
  auto kernel = make_nvbio_like(kPaperBatch);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto batch = saloba::testing::related_batch(5, 4, 256, 256);
  EXPECT_NO_THROW(kernel->run(dev, batch, align::ScoringScheme{}));
}

TEST(Limits, Soap3OomOnLongInputsOnGtx1650) {
  // 5000 x 1024 x 1 KiB = ~5 GB > 4 GB (paper: dataset-A failure, Fig 6(b)).
  auto kernel = make_soap3dp_like(kPaperBatch);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto batch = saloba::testing::related_batch(6, 4, 1024, 1024);
  EXPECT_THROW(kernel->run(dev, batch, align::ScoringScheme{}), gpusim::DeviceOomError);
}

TEST(Limits, Soap3SurvivesShortReadsOnGtx1650) {
  auto kernel = make_soap3dp_like(kPaperBatch);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto batch = saloba::testing::related_batch(7, 4, 512, 512);
  EXPECT_NO_THROW(kernel->run(dev, batch, align::ScoringScheme{}));
}

TEST(Limits, Soap3LongInputsFitOnRtx3090) {
  auto kernel = make_soap3dp_like(kPaperBatch);
  gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
  auto batch = saloba::testing::related_batch(8, 4, 2048, 2048);
  EXPECT_NO_THROW(kernel->run(dev, batch, align::ScoringScheme{}));
}

TEST(Limits, WithoutNominalScalingSmallBatchesFit) {
  // Tests run with nominal = 0: the actual 4-pair batch fits everywhere.
  auto kernel = make_nvbio_like(0);
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  auto batch = saloba::testing::related_batch(9, 4, 1024, 1024);
  EXPECT_NO_THROW(kernel->run(dev, batch, align::ScoringScheme{}));
}

TEST(Limits, SwSharpLaunchesTwicePerWavePerPair) {
  // One compute kernel plus one reduction kernel per anti-diagonal wave.
  auto kernel = make_swsharp_like();
  gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
  // 300 bp -> 2x2 tiles of 256 -> 3 waves per pair.
  auto batch = saloba::testing::related_batch(10, 5, 300, 300);
  auto result = kernel->run(dev, batch, align::ScoringScheme{});
  EXPECT_EQ(result.launches, 5u * 3u * 2u);
  // 200 bp -> single tile -> 1 wave per pair.
  auto small = saloba::testing::related_batch(11, 5, 200, 200);
  EXPECT_EQ(kernel->run(dev, small, align::ScoringScheme{}).launches, 5u * 2u);
}

TEST(Limits, GasalAndSalobaHandle4096) {
  auto batch = saloba::testing::related_batch(12, 2, 4096, 4096);
  for (const char* name : {"gasal2", "saloba"}) {
    gpusim::Device dev(gpusim::DeviceSpec::rtx3090());
    EXPECT_NO_THROW(make_kernel(name)->run(dev, batch, align::ScoringScheme{})) << name;
  }
}

TEST(Limits, KernelInfoMatchesTableTwo) {
  struct Row {
    const char* name;
    const char* parallelism;
    int bits;
  };
  const Row rows[] = {
      {"soap3-dp", "inter-query", 2}, {"cushaw2-gpu", "inter-query", 2},
      {"nvbio", "inter-query", 4},    {"gasal2", "inter-query", 4},
      {"sw#", "intra-query", 8},      {"adept", "intra-query", 8},
      {"saloba", "intra-query", 4},
  };
  for (const auto& row : rows) {
    auto kernel = make_kernel(row.name);
    EXPECT_EQ(kernel->info().parallelism, row.parallelism) << row.name;
    EXPECT_EQ(kernel->info().bitwidth, row.bits) << row.name;
  }
}

}  // namespace
}  // namespace saloba::kernels
