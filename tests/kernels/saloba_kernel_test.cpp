// SALoBa-specific invariants from paper Sec. IV: conflict-free shared
// memory, coalesced lazy spilling, the 1/32 intermediate-traffic claim, and
// subwarp behaviour.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "kernels/baselines.hpp"
#include "kernels/kernel_iface.hpp"
#include "kernels/saloba_kernel.hpp"

namespace saloba::kernels {
namespace {

using align::ScoringScheme;

KernelResult run_config(const SalobaConfig& cfg, const seq::PairBatch& batch,
                        const gpusim::DeviceSpec& spec = gpusim::DeviceSpec::gtx1650()) {
  gpusim::Device dev(spec);
  return make_saloba(cfg)->run(dev, batch, ScoringScheme{});
}

TEST(Saloba, AllSubwarpSizesProduceIdenticalResults) {
  auto batch = saloba::testing::imbalanced_batch(91, 40, 10, 500);
  SalobaConfig cfg;
  cfg.subwarp_size = 8;
  auto r8 = run_config(cfg, batch);
  cfg.subwarp_size = 16;
  auto r16 = run_config(cfg, batch);
  cfg.subwarp_size = 32;
  auto r32 = run_config(cfg, batch);
  EXPECT_EQ(r8.results, r16.results);
  EXPECT_EQ(r16.results, r32.results);
}

TEST(Saloba, LazyAndNaiveSpillAgreeFunctionally) {
  auto batch = saloba::testing::related_batch(92, 20, 700, 700);
  SalobaConfig lazy;
  lazy.subwarp_size = 32;
  lazy.lazy_spill = true;
  SalobaConfig naive;
  naive.subwarp_size = 32;
  naive.lazy_spill = false;
  EXPECT_EQ(run_config(lazy, batch).results, run_config(naive, batch).results);
}

TEST(Saloba, SharedMemoryAccessIsConflictFree) {
  // Paper Sec. IV-A: "all access to the shared memory is conflict-free".
  auto batch = saloba::testing::related_batch(93, 16, 400, 400);
  for (int sw : {8, 16, 32}) {
    SalobaConfig cfg;
    cfg.subwarp_size = sw;
    auto r = run_config(cfg, batch);
    EXPECT_EQ(r.stats.totals.shared_conflict_cycles, 0u) << "subwarp " << sw;
    EXPECT_GT(r.stats.totals.shared_requests, 0u);
  }
}

TEST(Saloba, LazySpillMovesFewerBytesThanNaive) {
  // Multi-chunk input so spills actually happen (ref 1024 -> 4 chunks at
  // warp size 32).
  auto batch = saloba::testing::related_batch(94, 8, 1024, 1024);
  SalobaConfig lazy;
  lazy.subwarp_size = 32;
  SalobaConfig naive = lazy;
  naive.lazy_spill = false;
  auto rl = run_config(lazy, batch);
  auto rn = run_config(naive, batch);
  EXPECT_LT(rl.stats.totals.global_bytes_moved, rn.stats.totals.global_bytes_moved);
  EXPECT_LT(rl.stats.totals.global_requests, rn.stats.totals.global_requests);
  // Useful bytes are similar (same boundary data), waste differs.
  double lazy_waste = static_cast<double>(rl.stats.totals.global_bytes_moved) /
                      static_cast<double>(rl.stats.totals.global_bytes_useful);
  double naive_waste = static_cast<double>(rn.stats.totals.global_bytes_moved) /
                       static_cast<double>(rn.stats.totals.global_bytes_useful);
  EXPECT_LT(lazy_waste, naive_waste);
}

TEST(Saloba, IntermediateTrafficFarBelowGasal2) {
  // Paper Sec. IV-A: intra-query parallelism stores only chunk boundaries —
  // 1/32 of GASAL2's strip boundaries for a 32-thread warp.
  auto batch = saloba::testing::related_batch(95, 8, 2048, 2048);
  gpusim::Device dev_a(gpusim::DeviceSpec::gtx1650());
  auto gasal = make_gasal2_like()->run(dev_a, batch, ScoringScheme{});
  SalobaConfig cfg;
  cfg.subwarp_size = 32;
  auto saloba = run_config(cfg, batch);
  // Useful bytes include inputs too, so compare against a loose 1/8 bound
  // rather than the asymptotic 1/32.
  EXPECT_LT(saloba.stats.totals.global_bytes_useful,
            gasal.stats.totals.global_bytes_useful / 8);
}

TEST(Saloba, CellsCountedExactly) {
  auto batch = saloba::testing::imbalanced_batch(96, 12, 20, 300);
  SalobaConfig cfg;
  auto r = run_config(cfg, batch);
  EXPECT_EQ(r.stats.totals.dp_cells, batch.total_cells());
}

TEST(Saloba, SmallerSubwarpsRaiseLaneUtilizationOnShortReads) {
  // Paper Sec. IV-C: the prologue/epilogue waste shrinks with subwarp size.
  auto batch = saloba::testing::related_batch(97, 32, 128, 128);
  SalobaConfig cfg;
  cfg.subwarp_size = 32;
  auto util32 = run_config(cfg, batch).stats.totals.lane_utilization(32);
  cfg.subwarp_size = 8;
  auto util8 = run_config(cfg, batch).stats.totals.lane_utilization(32);
  EXPECT_GT(util8, util32);
}

TEST(Saloba, ManyPairsPerSubwarpStillCorrect) {
  // More pairs than subwarps: queues wrap around.
  auto batch = saloba::testing::imbalanced_batch(98, 200, 5, 150);
  SalobaConfig cfg;
  cfg.subwarp_size = 8;
  auto r = run_config(cfg, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(r.results[i],
              align::smith_waterman(batch.refs[i], batch.queries[i], ScoringScheme{}))
        << "pair " << i;
  }
}

TEST(Saloba, KernelNamesEncodeConfig) {
  SalobaConfig cfg;
  cfg.subwarp_size = 16;
  EXPECT_EQ(make_saloba(cfg)->info().name, "SALoBa-sw16");
  cfg.subwarp_size = 32;
  cfg.lazy_spill = false;
  EXPECT_EQ(make_saloba(cfg)->info().name, "SALoBa-intra");
}

TEST(SalobaDeath, RejectsBadSubwarpSize) {
  SalobaConfig cfg;
  cfg.subwarp_size = 12;
  EXPECT_DEATH(make_saloba(cfg), "subwarp_size");
}

}  // namespace
}  // namespace saloba::kernels
