// The Sec. IV-C (full-warp spilling) and Sec. VII-B (banded) SALoBa
// variants: functional equivalence / banded semantics plus their intended
// traffic effects.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "kernels/saloba_kernel.hpp"

namespace saloba::kernels {
namespace {

using align::ScoringScheme;

KernelResult run_cfg(const SalobaConfig& cfg, const seq::PairBatch& batch,
                     const gpusim::DeviceSpec& spec) {
  gpusim::Device dev(spec);
  return make_saloba(cfg)->run(dev, batch, ScoringScheme{});
}

TEST(FullWarpSpill, FunctionallyIdenticalToDefault) {
  auto batch = saloba::testing::imbalanced_batch(201, 24, 100, 900);
  SalobaConfig base;
  base.subwarp_size = 8;
  SalobaConfig fw = base;
  fw.full_warp_spill = true;
  auto spec = gpusim::DeviceSpec::pascal_p100();
  EXPECT_EQ(run_cfg(base, batch, spec).results, run_cfg(fw, batch, spec).results);
}

TEST(FullWarpSpill, RestoresCoalescingOnPreVolta) {
  // Sec. IV-C: with 8-thread subwarps, spill bursts are only 256 B wide —
  // poor at 128 B granularity. The N+32-slot variant gathers full-warp
  // 1 KiB bursts and should move fewer bytes on a pre-Volta part.
  auto batch = saloba::testing::related_batch(202, 12, 1024, 1024);
  SalobaConfig base;
  base.subwarp_size = 8;
  SalobaConfig fw = base;
  fw.full_warp_spill = true;
  auto spec = gpusim::DeviceSpec::pascal_p100();
  auto rb = run_cfg(base, batch, spec);
  auto rf = run_cfg(fw, batch, spec);
  EXPECT_LT(rf.stats.totals.global_bytes_moved, rb.stats.totals.global_bytes_moved);
  EXPECT_LT(rf.stats.totals.global_requests, rb.stats.totals.global_requests);
}

TEST(FullWarpSpill, CostsSharedMemoryOccupancy) {
  SalobaConfig base;
  base.subwarp_size = 8;
  SalobaConfig fw = base;
  fw.full_warp_spill = true;
  // Name encodes the variant.
  EXPECT_EQ(make_saloba(fw)->info().name, "SALoBa-sw8-fw");
  EXPECT_EQ(make_saloba(base)->info().name, "SALoBa-sw8");
}

TEST(FullWarpSpill, NoopAtFullWarpSubwarps) {
  auto batch = saloba::testing::related_batch(203, 8, 700, 700);
  SalobaConfig base;
  base.subwarp_size = 32;
  SalobaConfig fw = base;
  fw.full_warp_spill = true;
  auto spec = gpusim::DeviceSpec::volta_v100();
  auto rb = run_cfg(base, batch, spec);
  auto rf = run_cfg(fw, batch, spec);
  EXPECT_EQ(rb.results, rf.results);
  EXPECT_EQ(rb.stats.totals.global_bytes_moved, rf.stats.totals.global_bytes_moved);
}

TEST(BandedSaloba, WideBandEqualsFullKernel) {
  auto batch = saloba::testing::imbalanced_batch(204, 20, 50, 400);
  SalobaConfig full;
  SalobaConfig banded = full;
  banded.band = 1024;  // wider than any pair
  auto spec = gpusim::DeviceSpec::gtx1650();
  EXPECT_EQ(run_cfg(full, batch, spec).results, run_cfg(banded, batch, spec).results);
}

TEST(BandedSaloba, NarrowBandNeverExceedsFullScore) {
  auto batch = saloba::testing::related_batch(205, 20, 300, 300);
  SalobaConfig banded;
  banded.band = 16;
  auto spec = gpusim::DeviceSpec::gtx1650();
  auto full_results = run_cfg(SalobaConfig{}, batch, spec).results;
  auto banded_results = run_cfg(banded, batch, spec).results;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_LE(banded_results[i].score, full_results[i].score) << i;
  }
}

TEST(BandedSaloba, NearDiagonalPairsKeepFullScore) {
  // Mutated copies of equal length stay near the diagonal: a moderate band
  // must recover the full score (the Sec. VII-B premise).
  util::Xoshiro256 rng(206);
  seq::PairBatch batch;
  for (int i = 0; i < 12; ++i) {
    auto ref = saloba::testing::random_seq(rng, 384);
    batch.add(saloba::testing::mutate(rng, ref, 0.05), std::move(ref));
  }
  SalobaConfig banded;
  banded.band = 64;
  auto spec = gpusim::DeviceSpec::gtx1650();
  auto full_results = run_cfg(SalobaConfig{}, batch, spec).results;
  auto banded_results = run_cfg(banded, batch, spec).results;
  int equal = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    equal += banded_results[i] == full_results[i];
  }
  EXPECT_GE(equal, 11);
}

TEST(BandedSaloba, ComputesFewerCells) {
  auto batch = saloba::testing::related_batch(207, 8, 512, 512);
  auto spec = gpusim::DeviceSpec::gtx1650();
  auto full = run_cfg(SalobaConfig{}, batch, spec);
  SalobaConfig banded;
  banded.band = 32;
  auto narrow = run_cfg(banded, batch, spec);
  EXPECT_LT(narrow.stats.totals.dp_cells, full.stats.totals.dp_cells / 3);
  EXPECT_LT(narrow.time.total_ms, full.time.total_ms);
}

TEST(BandedSaloba, BandedWithSubwarpsStillConsistent) {
  auto batch = saloba::testing::imbalanced_batch(208, 16, 40, 300);
  for (int sw : {8, 16, 32}) {
    SalobaConfig cfg;
    cfg.subwarp_size = sw;
    cfg.band = 2048;  // effectively unbanded
    auto spec = gpusim::DeviceSpec::rtx3090();
    auto results = run_cfg(cfg, batch, spec).results;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(results[i],
                align::smith_waterman(batch.refs[i], batch.queries[i], ScoringScheme{}))
          << "sw" << sw << " pair " << i;
    }
  }
}

}  // namespace
}  // namespace saloba::kernels
