// Memory-traffic accounting vs the paper's Table I analytic model for the
// existing (GASAL2-style) aligner.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "gpusim/device.hpp"
#include "kernels/baselines.hpp"

namespace saloba::kernels {
namespace {

using align::ScoringScheme;

KernelResult run_gasal(const seq::PairBatch& batch, const gpusim::DeviceSpec& spec) {
  gpusim::Device dev(spec);
  return make_gasal2_like()->run(dev, batch, ScoringScheme{});
}

TEST(TableOne, StoredIntermediateScalesAsNSquaredOverEight) {
  // GASAL2 stores one (H,F) cell per query column per strip: N/8 strips x
  // N columns x 4 B = N^2/2 bytes per pair, and reads them back once.
  const std::size_t n = 512;
  auto batch = saloba::testing::related_batch(101, 4, n, n);
  auto r = run_gasal(batch, gpusim::DeviceSpec::gtx1650());
  // Useful bytes ≈ inputs + results + stores (N^2/2) + loads ((N-8)/8 rows).
  double per_pair_useful =
      static_cast<double>(r.stats.totals.global_bytes_useful) / 4.0;
  double expected_interm = static_cast<double>(n) * n / 2.0 * 2.0;  // store + load
  EXPECT_NEAR(per_pair_useful, expected_interm, expected_interm * 0.15);
}

TEST(TableOne, PreVoltaMovesFourTimesMoreThanVolta) {
  // 128 B vs 32 B transactions on the same scattered 4 B accesses
  // (Table I: 16N^2 vs 4N^2).
  auto batch = saloba::testing::related_batch(102, 4, 256, 256);
  auto volta = run_gasal(batch, gpusim::DeviceSpec::volta_v100());
  auto pascal = run_gasal(batch, gpusim::DeviceSpec::pascal_p100());
  EXPECT_EQ(volta.stats.totals.global_bytes_useful, pascal.stats.totals.global_bytes_useful);
  double ratio = static_cast<double>(pascal.stats.totals.global_bytes_moved) /
                 static_cast<double>(volta.stats.totals.global_bytes_moved);
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(TableOne, MovedBytesCarryGranularityWaste) {
  auto batch = saloba::testing::related_batch(103, 8, 256, 256);
  auto r = run_gasal(batch, gpusim::DeviceSpec::gtx1650());
  // Scattered 4 B row-buffer accesses dominate: ~8x waste at 32 B sectors.
  double waste = static_cast<double>(r.stats.totals.global_bytes_moved) /
                 static_cast<double>(r.stats.totals.global_bytes_useful);
  EXPECT_GT(waste, 4.0);
  EXPECT_LT(waste, 9.0);
}

TEST(Traffic, Cushaw2CompactionHalvesIntermediateUseful) {
  auto batch = saloba::testing::related_batch(104, 4, 512, 512);
  gpusim::Device d1(gpusim::DeviceSpec::rtx3090());
  auto gasal = make_gasal2_like()->run(d1, batch, ScoringScheme{});
  gpusim::Device d2(gpusim::DeviceSpec::rtx3090());
  auto cushaw = make_cushaw2_like()->run(d2, batch, ScoringScheme{});
  EXPECT_LT(cushaw.stats.totals.global_bytes_useful,
            gasal.stats.totals.global_bytes_useful * 0.7);
}

TEST(Traffic, AdeptHasNoIntermediateGlobalTraffic) {
  auto batch = saloba::testing::related_batch(105, 8, 512, 512);
  gpusim::Device d1(gpusim::DeviceSpec::rtx3090());
  auto adept = make_adept_like()->run(d1, batch, ScoringScheme{});
  gpusim::Device d2(gpusim::DeviceSpec::rtx3090());
  auto gasal = make_gasal2_like()->run(d2, batch, ScoringScheme{});
  // ADEPT only reads inputs and writes results: orders of magnitude less.
  EXPECT_LT(adept.stats.totals.global_bytes_useful,
            gasal.stats.totals.global_bytes_useful / 20);
}

TEST(Traffic, AllKernelsCountAllCells) {
  auto batch = saloba::testing::imbalanced_batch(106, 10, 30, 400);
  for (const char* name : {"gasal2", "nvbio", "cushaw2-gpu", "sw#", "adept", "saloba"}) {
    gpusim::Device dev(gpusim::DeviceSpec::gtx1650());
    auto r = make_kernel(name)->run(dev, batch, ScoringScheme{});
    EXPECT_EQ(r.stats.totals.dp_cells, batch.total_cells()) << name;
  }
}

TEST(Traffic, GasalDivergenceShowsOnImbalancedBatches) {
  auto balanced = saloba::testing::related_batch(107, 64, 256, 256);
  auto imbalanced = saloba::testing::imbalanced_batch(108, 64, 16, 496);
  gpusim::Device d1(gpusim::DeviceSpec::gtx1650());
  auto rb = make_gasal2_like()->run(d1, balanced, ScoringScheme{});
  gpusim::Device d2(gpusim::DeviceSpec::gtx1650());
  auto ri = make_gasal2_like()->run(d2, imbalanced, ScoringScheme{});
  EXPECT_GT(rb.stats.totals.lane_utilization(32), 0.95);
  EXPECT_LT(ri.stats.totals.lane_utilization(32), 0.80);
}

TEST(Traffic, SalobaKeepsUtilizationOnImbalancedBatches) {
  auto imbalanced = saloba::testing::imbalanced_batch(109, 64, 16, 496);
  gpusim::Device d1(gpusim::DeviceSpec::gtx1650());
  auto gasal = make_gasal2_like()->run(d1, imbalanced, ScoringScheme{});
  gpusim::Device d2(gpusim::DeviceSpec::gtx1650());
  auto saloba = make_kernel("saloba")->run(d2, imbalanced, ScoringScheme{});
  EXPECT_GT(saloba.stats.totals.lane_utilization(32),
            gasal.stats.totals.lane_utilization(32));
}

}  // namespace
}  // namespace saloba::kernels
