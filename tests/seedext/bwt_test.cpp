#include "seedext/bwt.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {
namespace {

TEST(Bwt, RoundTripKnownString) {
  auto text = seq::encode_string("GATTACA");
  auto bwt = build_bwt(text);
  EXPECT_EQ(bwt.bwt.size(), text.size() + 1);
  EXPECT_EQ(invert_bwt(bwt), text);
}

TEST(Bwt, SentinelAppearsExactlyOnce) {
  auto text = seq::encode_string("ACGTACGT");
  auto bwt = build_bwt(text);
  std::size_t sentinels = 0;
  for (auto c : bwt.bwt) sentinels += (c == kBwtSentinel);
  EXPECT_EQ(sentinels, 1u);
  EXPECT_EQ(bwt.bwt[bwt.primary], kBwtSentinel);
}

TEST(Bwt, BwtIsPermutationOfTextPlusSentinel) {
  util::Xoshiro256 rng(111);
  auto text = saloba::testing::random_seq(rng, 200);
  auto bwt = build_bwt(text);
  std::array<int, 6> text_counts{}, bwt_counts{};
  for (auto c : text) ++text_counts[c];
  for (auto c : bwt.bwt) ++bwt_counts[c == kBwtSentinel ? 5 : c];
  for (int c = 0; c < 5; ++c) EXPECT_EQ(text_counts[c], bwt_counts[c]);
  EXPECT_EQ(bwt_counts[5], 1);
}

class BwtRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BwtRoundTrip, RandomTextsSurvive) {
  util::Xoshiro256 rng(GetParam() * 3 + 7);
  auto text = saloba::testing::random_seq_with_n(rng, GetParam(), 0.05);
  EXPECT_EQ(invert_bwt(build_bwt(text)), text);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BwtRoundTrip,
                         ::testing::Values(1, 2, 5, 16, 100, 1000, 10000));

TEST(Bwt, EmptyText) {
  std::vector<seq::BaseCode> empty;
  auto bwt = build_bwt(empty);
  EXPECT_TRUE(invert_bwt(bwt).empty());
}

TEST(Bwt, RepetitiveTextGroupsRuns) {
  // BWT of a highly repetitive string has long runs — sanity-check the
  // compression-friendliness property.
  std::vector<seq::BaseCode> text;
  for (int i = 0; i < 64; ++i) {
    auto unit = seq::encode_string("ACGT");
    text.insert(text.end(), unit.begin(), unit.end());
  }
  auto bwt = build_bwt(text);
  std::size_t runs = 1;
  for (std::size_t i = 1; i < bwt.bwt.size(); ++i) runs += bwt.bwt[i] != bwt.bwt[i - 1];
  EXPECT_LT(runs, bwt.bwt.size() / 8);
  EXPECT_EQ(invert_bwt(bwt), text);
}

}  // namespace
}  // namespace saloba::seedext
