// Conformance layer for the batched forward-only chaining engine: every
// output must be bit-identical to the sequential chain_seeds oracle —
// across seed counts (either side of the lookahead window), dense repeat
// pileups, both strand shapes, out-of-envelope tasks (scalar routing), and
// thread counts / repeated runs (determinism).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "seedext/chain_batch.hpp"
#include "seedext/chain_engine.hpp"
#include "seedext/chaining.hpp"

namespace saloba::seedext {
namespace {

std::vector<Seed> random_anchor_set(std::mt19937& rng, std::size_t n, std::uint32_t qspan,
                                    std::uint32_t diag_spread, std::uint32_t max_len) {
  std::uniform_int_distribution<std::uint32_t> qdist(0, qspan);
  std::uniform_int_distribution<std::uint32_t> ddist(0, diag_spread);
  std::uniform_int_distribution<std::uint32_t> ldist(1, max_len);
  std::vector<Seed> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t qpos = qdist(rng);
    seeds.push_back(Seed{qpos, 20000 + qpos + ddist(rng), ldist(rng)});
  }
  return seeds;
}

void expect_matches_oracle(const std::vector<Seed>& seeds, const ChainingParams& params,
                           const char* what) {
  auto oracle = chain_seeds(seeds, params);
  ChainEngineStats stats;
  auto engine = chain_engine_seeds(seeds, params, &stats);
  ASSERT_EQ(engine.size(), oracle.size()) << what;
  for (std::size_t c = 0; c < oracle.size(); ++c) {
    EXPECT_EQ(engine[c].score, oracle[c].score) << what << " chain " << c;
    EXPECT_EQ(engine[c].truncated, oracle[c].truncated) << what << " chain " << c;
    ASSERT_EQ(engine[c].seeds, oracle[c].seeds) << what << " chain " << c;
  }
}

// --- Seed-count sweep across the lookahead boundary ----------------------

TEST(ChainConformance, SeedCountSweep) {
  // 0..2 trivially; then counts straddling kChainLookahead (64) and the
  // 8-lane vector width, where settlement and push paths trade off.
  std::mt19937 rng(101);
  for (std::size_t n :
       {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 31u, 63u, 64u, 65u, 72u, 127u, 128u, 129u, 300u}) {
    for (int rep = 0; rep < 4; ++rep) {
      auto seeds = random_anchor_set(rng, n, 1500, 200, 30);
      expect_matches_oracle(seeds, ChainingParams{}, "sweep");
    }
  }
}

TEST(ChainConformance, WidePositionsForceSettlement) {
  // Large qpos span with a generous max_gap: eligible predecessors reach far
  // beyond the lookahead window, so the exact settlement pass must carry
  // the recurrence, not the vector pushes.
  std::mt19937 rng(202);
  ChainingParams params;
  params.max_gap = 50000;
  params.max_diag_drift = 5000;
  for (int rep = 0; rep < 10; ++rep) {
    auto seeds = random_anchor_set(rng, 220, 40000, 4000, 30);
    expect_matches_oracle(seeds, params, "settlement");
  }
}

TEST(ChainConformance, DenseRepeatsPileUpOnFewDiagonals) {
  // Repeat pileups: hundreds of anchors sharing a handful of qpos values —
  // ties everywhere, so the earliest-j tie-break is what's under test.
  std::mt19937 rng(303);
  std::uniform_int_distribution<std::uint32_t> qdist(0, 40);
  std::uniform_int_distribution<std::uint32_t> ddist(0, 8);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<Seed> seeds;
    for (int i = 0; i < 400; ++i) {
      const std::uint32_t qpos = qdist(rng) * 10;
      seeds.push_back(Seed{qpos, 5000 + qpos + ddist(rng), 10});
    }
    ChainingParams params;
    params.top_n = 8;
    params.drop_ratio = 0.0;
    expect_matches_oracle(seeds, params, "repeats");
  }
}

TEST(ChainConformance, BothStrandShapes) {
  // A forward-strand anchor run and its mirrored (reverse-complement
  // projection) counterpart — rpos descending with qpos before sorting.
  std::mt19937 rng(404);
  for (int rep = 0; rep < 10; ++rep) {
    auto fwd = random_anchor_set(rng, 120, 2000, 150, 25);
    std::vector<Seed> rev;
    rev.reserve(fwd.size());
    for (const Seed& s : fwd) {
      rev.push_back(Seed{2000 - std::min<std::uint32_t>(s.qpos, 2000), s.rpos, s.len});
    }
    expect_matches_oracle(fwd, ChainingParams{}, "fwd strand");
    expect_matches_oracle(rev, ChainingParams{}, "rev strand");
  }
}

TEST(ChainConformance, ParameterFuzz) {
  std::mt19937 rng(505);
  std::uniform_int_distribution<int> ndist(1, 300);
  for (int rep = 0; rep < 40; ++rep) {
    ChainingParams params;
    params.max_gap = 1 + rep * 37 % 2000;
    params.max_diag_drift = 1 + rep * 53 % 800;
    params.gap_cost_num = 1 + rep * 29 % 512;
    params.top_n = 1 + rep % 6;
    params.drop_ratio = (rep % 4) * 0.3;
    auto seeds = random_anchor_set(rng, static_cast<std::size_t>(ndist(rng)), 3000, 600, 40);
    expect_matches_oracle(seeds, params, "param fuzz");
  }
}

// --- Envelope guard: out-of-range tasks route to the scalar oracle --------

TEST(ChainConformance, OutOfEnvelopeTaskStaysExact) {
  // Positions past 2^30 and a seed length past 2^20 both break the int32
  // exactness proof; the engine must route those tasks to the scalar DP and
  // still match the oracle bit for bit.
  ChainingParams params;
  params.max_gap = 100000;

  std::vector<Seed> huge_pos{{1u << 30, (1u << 30) + 1000, 30},
                             {(1u << 30) + 60, (1u << 30) + 1060, 30}};
  std::vector<Seed> huge_len{{0, 1000, (1u << 20) + 5}, {1u << 21, (1u << 21) + 1000, 30}};

  for (const auto& seeds : {huge_pos, huge_len}) {
    ChainBatch batch(params);
    batch.add_task(seeds);
    EXPECT_FALSE(batch.task_simd_safe(0));
    ChainEngineStats stats;
    auto out = chain_batch_run(batch, &stats);
    EXPECT_EQ(stats.scalar_tasks, 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], chain_seeds(seeds, params));
  }
}

// --- Batched execution: thread counts, repetition, sharding ---------------

ChainBatch mixed_batch(std::mt19937& rng, std::size_t tasks, const ChainingParams& params) {
  ChainBatch batch(params);
  std::uniform_int_distribution<int> ndist(0, 220);
  for (std::size_t t = 0; t < tasks; ++t) {
    batch.add_task(random_anchor_set(rng, static_cast<std::size_t>(ndist(rng)), 2500, 300, 30));
  }
  return batch;
}

TEST(ChainConformance, ThreadCountsAndRerunsAreDeterministic) {
  std::mt19937 rng(606);
  ChainBatch batch = mixed_batch(rng, 48, ChainingParams{});

  auto serial = chain_batch_run(batch, nullptr, /*threads=*/1);
  auto team = chain_batch_run(batch, nullptr, /*threads=*/4);
  auto again = chain_batch_run(batch, nullptr, /*threads=*/4);
  ASSERT_EQ(serial.size(), batch.tasks());
  EXPECT_EQ(team, serial);
  EXPECT_EQ(again, serial);

  // And each task equals its own sequential oracle run.
  for (std::size_t t = 0; t < batch.tasks(); ++t) {
    EXPECT_EQ(serial[t], chain_seeds(batch.task_seeds(t), batch.params())) << "task " << t;
  }
}

TEST(ChainConformance, StructuralCountersAreRunInvariant) {
  // pushes/settled are candidate counts, not accepted updates — identical
  // across thread counts and repeated runs (the scheduling-proof stats).
  std::mt19937 rng(707);
  ChainBatch batch = mixed_batch(rng, 24, ChainingParams{});
  ChainEngineStats a, b;
  chain_batch_run(batch, &a, 1);
  chain_batch_run(batch, &b, 4);
  EXPECT_EQ(a.pushes, b.pushes);
  EXPECT_EQ(a.settled, b.settled);
  EXPECT_EQ(a.anchors, b.anchors);
  EXPECT_EQ(a.tasks, b.tasks);
}

TEST(ChainConformance, ShardsPartitionTasks) {
  std::mt19937 rng(808);
  ChainBatch batch = mixed_batch(rng, 37, ChainingParams{});

  for (std::size_t cap : {0u, 1u, 3u, 10u}) {
    auto shards = make_chain_shards(batch, {1.0, 2.0, 0.5}, cap);
    std::vector<int> seen(batch.tasks(), 0);
    for (const ChainShard& s : shards) {
      EXPECT_FALSE(s.tasks.empty());
      EXPECT_GE(s.lane, 0);
      EXPECT_LT(s.lane, 3);
      if (cap > 0) EXPECT_LE(s.tasks.size(), cap);
      std::size_t work = 0;
      for (std::size_t t : s.tasks) {
        ASSERT_LT(t, batch.tasks());
        ++seen[t];
        work += batch.task_work(t);
      }
      EXPECT_EQ(s.work, work);
    }
    // Exact partition: every task exactly once.
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int c) { return c == 1; }))
        << "cap " << cap;
  }
}

TEST(ChainConformance, ShardedRunsMatchUnsharded) {
  std::mt19937 rng(909);
  ChainBatch batch = mixed_batch(rng, 30, ChainingParams{});
  auto expected = chain_batch_run(batch);

  auto shards = make_chain_shards(batch, {1.0, 1.5}, /*max_shard_tasks=*/4);
  std::vector<std::vector<Chain>> out(batch.tasks());
  for (const ChainShard& s : shards) chain_tasks_run(batch, s.tasks, out);
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace saloba::seedext
