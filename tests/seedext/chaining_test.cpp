#include "seedext/chaining.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace saloba::seedext {
namespace {

/// Deterministic clustered seed generator: anchors scattered around a few
/// diagonals, the shape real seeding produces (dense colinear runs plus
/// off-diagonal noise).
std::vector<Seed> random_anchor_set(std::mt19937& rng, std::size_t n,
                                    std::uint32_t qspan = 2000,
                                    std::uint32_t diag_spread = 300,
                                    std::uint32_t max_len = 40) {
  std::uniform_int_distribution<std::uint32_t> qdist(0, qspan);
  std::uniform_int_distribution<std::uint32_t> ddist(0, diag_spread);
  std::uniform_int_distribution<std::uint32_t> ldist(1, max_len);
  std::vector<Seed> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t qpos = qdist(rng);
    seeds.push_back(Seed{qpos, 10000 + qpos + ddist(rng), ldist(rng)});
  }
  return seeds;
}

/// Recomputes a chain's score from its seeds alone — the invariant
/// collect_chains' backtrack must preserve for full (non-truncated) chains.
std::int64_t recompute_score(const Chain& chain, const ChainingParams& params) {
  std::int64_t score = chain.seeds.front().len;
  for (std::size_t i = 1; i < chain.seeds.size(); ++i) {
    const Seed& prev = chain.seeds[i - 1];
    const Seed& cur = chain.seeds[i];
    const std::int64_t qgap =
        static_cast<std::int64_t>(cur.qpos) - (static_cast<std::int64_t>(prev.qpos) + prev.len);
    const std::int64_t rgap =
        static_cast<std::int64_t>(cur.rpos) - (static_cast<std::int64_t>(prev.rpos) + prev.len);
    score += static_cast<std::int64_t>(cur.len) -
             chain_gap_penalty(std::max(qgap, rgap), params.gap_cost_num);
  }
  return score;
}

TEST(Chaining, ColinearSeedsFormOneChain) {
  std::vector<Seed> seeds{{0, 1000, 30}, {40, 1040, 30}, {80, 1080, 30}};
  auto chains = chain_seeds(seeds, ChainingParams{});
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].seeds.size(), 3u);
  EXPECT_EQ(chains[0].first().qpos, 0u);
  EXPECT_EQ(chains[0].last().qpos, 80u);
}

TEST(Chaining, DistantDiagonalsSplitChains) {
  ChainingParams params;
  params.max_diag_drift = 100;
  params.drop_ratio = 0.1;
  std::vector<Seed> seeds{{0, 1000, 30}, {40, 90040, 30}};  // far apart in ref
  auto chains = chain_seeds(seeds, params);
  EXPECT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].seeds.size(), 1u);
}

TEST(Chaining, OverlappingSeedsDoNotChain) {
  std::vector<Seed> seeds{{0, 1000, 50}, {20, 1020, 50}};  // overlap on both axes
  auto chains = chain_seeds(seeds, ChainingParams{});
  for (const auto& c : chains) EXPECT_EQ(c.seeds.size(), 1u);
}

TEST(Chaining, GapPenaltyReducesScore) {
  ChainingParams params;
  std::vector<Seed> tight{{0, 1000, 30}, {30, 1030, 30}};
  std::vector<Seed> gapped{{0, 1000, 30}, {230, 1230, 30}};
  auto chains_tight = chain_seeds(tight, params);
  auto chains_gapped = chain_seeds(gapped, params);
  ASSERT_FALSE(chains_tight.empty());
  ASSERT_FALSE(chains_gapped.empty());
  EXPECT_GT(chains_tight[0].score, chains_gapped[0].score);
}

TEST(Chaining, TopNLimitsOutput) {
  ChainingParams params;
  params.top_n = 2;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds;
  for (int i = 0; i < 6; ++i) {
    seeds.push_back(Seed{0, static_cast<std::uint32_t>(10000 * (i + 1)), 25});
  }
  auto chains = chain_seeds(seeds, params);
  EXPECT_LE(chains.size(), 2u);
}

TEST(Chaining, DropRatioPrunesWeakChains) {
  ChainingParams params;
  params.drop_ratio = 0.9;
  std::vector<Seed> seeds{{0, 1000, 100}, {0, 50000, 20}};  // strong + weak
  auto chains = chain_seeds(seeds, params);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].first().rpos, 1000u);
}

TEST(Chaining, BestChainFirst) {
  ChainingParams params;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds{{0, 1000, 20}, {0, 50000, 80}};
  auto chains = chain_seeds(seeds, params);
  ASSERT_GE(chains.size(), 1u);
  EXPECT_EQ(chains[0].first().rpos, 50000u);
}

TEST(Chaining, EmptyInput) {
  EXPECT_TRUE(chain_seeds({}, ChainingParams{}).empty());
}

TEST(Chaining, MaxGapPreventsChaining) {
  ChainingParams params;
  params.max_gap = 50;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds{{0, 1000, 30}, {200, 1200, 30}};  // gap 170 > 50
  auto chains = chain_seeds(seeds, params);
  for (const auto& c : chains) EXPECT_EQ(c.seeds.size(), 1u);
}

// --- Integer-exact gap penalties -----------------------------------------

TEST(Chaining, GapPenaltyIsFixedPointExact) {
  // (gap * num) >> kGapCostShift, no floating point anywhere.
  EXPECT_EQ(chain_gap_penalty(0, 154), 0);
  EXPECT_EQ(chain_gap_penalty(1, 154), 0);       // 154 >> 10
  EXPECT_EQ(chain_gap_penalty(7, 154), 1);       // 1078 >> 10
  EXPECT_EQ(chain_gap_penalty(1000, 154), 150);  // 154000 >> 10 = floor(150.39)
  EXPECT_EQ(chain_gap_penalty(1 << 20, 154), (static_cast<std::int64_t>(154) << 20) >> 10);
  // The default numerator approximates the old 0.15 slope to < 1%.
  const double slope = 154.0 / (1 << kGapCostShift);
  EXPECT_NEAR(slope, 0.15, 0.0005);
}

// --- Sorted-qpos early exit ----------------------------------------------

TEST(Chaining, WindowedDpMatchesFullScan) {
  // The monotone-lo early exit in chain_dp must be invisible: a brute-force
  // reference scanning every j < i produces the same scores and parents.
  std::mt19937 rng(20260808);
  for (int rep = 0; rep < 20; ++rep) {
    auto seeds = random_anchor_set(rng, 150);
    sort_seeds(seeds);
    ChainingParams params;
    params.max_gap = 200;  // small window → the early exit actually fires

    std::vector<std::int64_t> score(seeds.size());
    std::vector<std::int32_t> parent(seeds.size());
    chain_dp(seeds, params, score, parent);

    for (std::size_t i = 0; i < seeds.size(); ++i) {
      std::int64_t best = seeds[i].len;
      std::int32_t from = -1;
      for (std::size_t j = 0; j < i; ++j) {
        const std::int64_t qgap = static_cast<std::int64_t>(seeds[i].qpos) -
                                  (static_cast<std::int64_t>(seeds[j].qpos) + seeds[j].len);
        const std::int64_t rgap = static_cast<std::int64_t>(seeds[i].rpos) -
                                  (static_cast<std::int64_t>(seeds[j].rpos) + seeds[j].len);
        if (qgap < 0 || rgap < 0 || qgap > params.max_gap || rgap > params.max_gap) continue;
        if (std::abs(seeds[i].diagonal() - seeds[j].diagonal()) > params.max_diag_drift) {
          continue;
        }
        const std::int64_t cand =
            score[j] + seeds[i].len -
            chain_gap_penalty(std::max(qgap, rgap), params.gap_cost_num);
        if (cand > best) {
          best = cand;
          from = static_cast<std::int32_t>(j);
        }
      }
      ASSERT_EQ(score[i], best) << "anchor " << i;
      ASSERT_EQ(parent[i], from) << "anchor " << i;
    }
  }
}

// --- Truncation flag ------------------------------------------------------

TEST(Chaining, SharedPrefixMarksTruncated) {
  // A (0,1000,50) feeds both B (best chain) and C; after the best chain
  // claims A, C's backtrack stops there and must say so.
  ChainingParams params;
  params.drop_ratio = 0.5;
  std::vector<Seed> seeds{{0, 1000, 50}, {60, 1060, 50}, {60, 1070, 30}};
  auto chains = chain_seeds(seeds, params);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_FALSE(chains[0].truncated);
  EXPECT_EQ(chains[0].seeds.size(), 2u);
  EXPECT_TRUE(chains[1].truncated);
  EXPECT_EQ(chains[1].seeds.size(), 1u);
  EXPECT_EQ(chains[1].first().rpos, 1070u);
  // The recorded score is still the DP endpoint score (includes the shared
  // prefix), strictly above what the surviving seeds alone produce.
  EXPECT_GT(chains[1].score, recompute_score(chains[1], params));
}

TEST(Chaining, DisjointChainsAreNotTruncated) {
  ChainingParams params;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds{{0, 1000, 30}, {40, 1040, 30}, {0, 50000, 30}, {40, 50040, 30}};
  auto chains = chain_seeds(seeds, params);
  ASSERT_EQ(chains.size(), 2u);
  for (const auto& c : chains) {
    EXPECT_FALSE(c.truncated);
    EXPECT_EQ(c.seeds.size(), 2u);
  }
}

// --- Chain invariants under fuzz -----------------------------------------

TEST(Chaining, PropertyInvariantsHoldUnderFuzz) {
  std::mt19937 rng(777);
  std::uniform_int_distribution<int> ndist(1, 250);
  for (int rep = 0; rep < 60; ++rep) {
    ChainingParams params;
    params.max_gap = 100 + rep * 17 % 400;
    params.max_diag_drift = 50 + rep * 31 % 300;
    params.top_n = 1 + rep % 5;
    params.drop_ratio = (rep % 3) * 0.4;
    auto seeds = random_anchor_set(rng, static_cast<std::size_t>(ndist(rng)));
    auto chains = chain_seeds(seeds, params);

    EXPECT_LE(chains.size(), params.top_n);
    const std::int64_t best = chains.empty() ? 0 : chains.front().score;
    for (const Chain& c : chains) {
      ASSERT_FALSE(c.seeds.empty());
      // Ranked best-first, none below the drop ratio.
      EXPECT_LE(c.score, best);
      EXPECT_GE(static_cast<double>(c.score), params.drop_ratio * static_cast<double>(best));
      for (std::size_t i = 1; i < c.seeds.size(); ++i) {
        const Seed& prev = c.seeds[i - 1];
        const Seed& cur = c.seeds[i];
        // Colinear and non-overlapping on both axes…
        const std::int64_t qgap = static_cast<std::int64_t>(cur.qpos) -
                                  (static_cast<std::int64_t>(prev.qpos) + prev.len);
        const std::int64_t rgap = static_cast<std::int64_t>(cur.rpos) -
                                  (static_cast<std::int64_t>(prev.rpos) + prev.len);
        EXPECT_GE(qgap, 0);
        EXPECT_GE(rgap, 0);
        // …within the gap budget and the diagonal band.
        EXPECT_LE(qgap, params.max_gap);
        EXPECT_LE(rgap, params.max_gap);
        EXPECT_LE(std::abs(cur.diagonal() - prev.diagonal()), params.max_diag_drift);
      }
      // Score bookkeeping: exact for full chains, never below the surviving
      // seeds' own contribution for truncated ones.
      if (c.truncated) {
        EXPECT_GE(c.score, recompute_score(c, params));
      } else {
        EXPECT_EQ(c.score, recompute_score(c, params));
      }
    }
  }
}

}  // namespace
}  // namespace saloba::seedext
