#include "seedext/chaining.hpp"

#include <gtest/gtest.h>

namespace saloba::seedext {
namespace {

TEST(Chaining, ColinearSeedsFormOneChain) {
  std::vector<Seed> seeds{{0, 1000, 30}, {40, 1040, 30}, {80, 1080, 30}};
  auto chains = chain_seeds(seeds, ChainingParams{});
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].seeds.size(), 3u);
  EXPECT_EQ(chains[0].first().qpos, 0u);
  EXPECT_EQ(chains[0].last().qpos, 80u);
}

TEST(Chaining, DistantDiagonalsSplitChains) {
  ChainingParams params;
  params.max_diag_drift = 100;
  params.drop_ratio = 0.1;
  std::vector<Seed> seeds{{0, 1000, 30}, {40, 90040, 30}};  // far apart in ref
  auto chains = chain_seeds(seeds, params);
  EXPECT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].seeds.size(), 1u);
}

TEST(Chaining, OverlappingSeedsDoNotChain) {
  std::vector<Seed> seeds{{0, 1000, 50}, {20, 1020, 50}};  // overlap on both axes
  auto chains = chain_seeds(seeds, ChainingParams{});
  for (const auto& c : chains) EXPECT_EQ(c.seeds.size(), 1u);
}

TEST(Chaining, GapPenaltyReducesScore) {
  ChainingParams params;
  std::vector<Seed> tight{{0, 1000, 30}, {30, 1030, 30}};
  std::vector<Seed> gapped{{0, 1000, 30}, {230, 1230, 30}};
  auto chains_tight = chain_seeds(tight, params);
  auto chains_gapped = chain_seeds(gapped, params);
  ASSERT_FALSE(chains_tight.empty());
  ASSERT_FALSE(chains_gapped.empty());
  EXPECT_GT(chains_tight[0].score, chains_gapped[0].score);
}

TEST(Chaining, TopNLimitsOutput) {
  ChainingParams params;
  params.top_n = 2;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds;
  for (int i = 0; i < 6; ++i) {
    seeds.push_back(Seed{0, static_cast<std::uint32_t>(10000 * (i + 1)), 25});
  }
  auto chains = chain_seeds(seeds, params);
  EXPECT_LE(chains.size(), 2u);
}

TEST(Chaining, DropRatioPrunesWeakChains) {
  ChainingParams params;
  params.drop_ratio = 0.9;
  std::vector<Seed> seeds{{0, 1000, 100}, {0, 50000, 20}};  // strong + weak
  auto chains = chain_seeds(seeds, params);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].first().rpos, 1000u);
}

TEST(Chaining, BestChainFirst) {
  ChainingParams params;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds{{0, 1000, 20}, {0, 50000, 80}};
  auto chains = chain_seeds(seeds, params);
  ASSERT_GE(chains.size(), 1u);
  EXPECT_EQ(chains[0].first().rpos, 50000u);
}

TEST(Chaining, EmptyInput) {
  EXPECT_TRUE(chain_seeds({}, ChainingParams{}).empty());
}

TEST(Chaining, MaxGapPreventsChaining) {
  ChainingParams params;
  params.max_gap = 50;
  params.drop_ratio = 0.0;
  std::vector<Seed> seeds{{0, 1000, 30}, {200, 1200, 30}};  // gap 170 > 50
  auto chains = chain_seeds(seeds, params);
  for (const auto& c : chains) EXPECT_EQ(c.seeds.size(), 1u);
}

}  // namespace
}  // namespace saloba::seedext
