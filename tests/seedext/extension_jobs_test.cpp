#include "seedext/extension_jobs.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {
namespace {

Chain single_seed_chain(std::uint32_t qpos, std::uint32_t rpos, std::uint32_t len) {
  Chain c;
  c.seeds.push_back(Seed{qpos, rpos, len});
  c.score = len;
  return c;
}

TEST(ExtensionJobs, LeftJobIsReversedPrefixAndWindow) {
  util::Xoshiro256 rng(151);
  auto genome = saloba::testing::random_seq(rng, 5000);
  auto read = saloba::testing::random_seq(rng, 200);
  Chain chain = single_seed_chain(/*qpos=*/60, /*rpos=*/2000, /*len=*/50);
  JobParams params;
  params.min_band = 20;
  params.band_frac = 0.5;
  auto jobs = make_extension_jobs(genome, read, chain, 7, params);
  ASSERT_EQ(jobs.size(), 2u);

  const auto& left = jobs[0];
  EXPECT_TRUE(left.left);
  EXPECT_EQ(left.read_id, 7u);
  ASSERT_EQ(left.query.size(), 60u);
  // Reversed prefix: left.query[0] == read[59].
  for (std::size_t i = 0; i < 60; ++i) EXPECT_EQ(left.query[i], read[59 - i]);
  // Reversed reference window ending at rpos: left.ref[0] == genome[1999].
  std::size_t window = 60 + std::max<std::size_t>(20, 30);
  ASSERT_EQ(left.ref.size(), window);
  for (std::size_t i = 0; i < window; ++i) EXPECT_EQ(left.ref[i], genome[1999 - i]);
  EXPECT_EQ(left.ref_origin, 2000u - window);
}

TEST(ExtensionJobs, RightJobIsSuffixAndForwardWindow) {
  util::Xoshiro256 rng(152);
  auto genome = saloba::testing::random_seq(rng, 5000);
  auto read = saloba::testing::random_seq(rng, 200);
  Chain chain = single_seed_chain(60, 2000, 50);
  JobParams params;
  params.min_band = 20;
  params.band_frac = 0.5;
  auto jobs = make_extension_jobs(genome, read, chain, 1, params);
  const auto& right = jobs[1];
  EXPECT_FALSE(right.left);
  ASSERT_EQ(right.query.size(), 90u);  // 200 - (60+50)
  for (std::size_t i = 0; i < 90; ++i) EXPECT_EQ(right.query[i], read[110 + i]);
  std::size_t window = 90 + std::max<std::size_t>(20, 45);
  ASSERT_EQ(right.ref.size(), window);
  for (std::size_t i = 0; i < window; ++i) EXPECT_EQ(right.ref[i], genome[2050 + i]);
  EXPECT_EQ(right.ref_origin, 2050u);
}

TEST(ExtensionJobs, SeedAtReadStartSkipsLeftJob) {
  util::Xoshiro256 rng(153);
  auto genome = saloba::testing::random_seq(rng, 2000);
  auto read = saloba::testing::random_seq(rng, 100);
  Chain chain = single_seed_chain(0, 500, 40);
  auto jobs = make_extension_jobs(genome, read, chain, 0, JobParams{});
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_FALSE(jobs[0].left);
}

TEST(ExtensionJobs, SeedCoveringWholeReadYieldsNoJobs) {
  util::Xoshiro256 rng(154);
  auto genome = saloba::testing::random_seq(rng, 2000);
  auto read = saloba::testing::random_seq(rng, 100);
  Chain chain = single_seed_chain(0, 500, 100);
  EXPECT_TRUE(make_extension_jobs(genome, read, chain, 0, JobParams{}).empty());
}

TEST(ExtensionJobs, WindowClampedAtGenomeEdges) {
  util::Xoshiro256 rng(155);
  auto genome = saloba::testing::random_seq(rng, 1000);
  auto read = saloba::testing::random_seq(rng, 100);
  // Anchor near the genome start: left window must clamp to rpos.
  Chain chain = single_seed_chain(50, 10, 30);
  auto jobs = make_extension_jobs(genome, read, chain, 0, JobParams{});
  ASSERT_FALSE(jobs.empty());
  EXPECT_TRUE(jobs[0].left);
  EXPECT_EQ(jobs[0].ref.size(), 10u);
  EXPECT_EQ(jobs[0].ref_origin, 0u);
}

TEST(ExtensionJobs, MultiSeedChainUsesAnchorAndTail) {
  util::Xoshiro256 rng(156);
  auto genome = saloba::testing::random_seq(rng, 5000);
  auto read = saloba::testing::random_seq(rng, 300);
  Chain chain;
  chain.seeds = {Seed{50, 1050, 40}, Seed{120, 1120, 60}};
  auto jobs = make_extension_jobs(genome, read, chain, 0, JobParams{});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].query.size(), 50u);             // left of first seed
  EXPECT_EQ(jobs[1].query.size(), 300u - 180u);     // right of last seed end
}

TEST(ExtensionJobs, BatchPreservesOrder) {
  util::Xoshiro256 rng(157);
  std::vector<ExtensionJob> jobs(3);
  jobs[0].query = saloba::testing::random_seq(rng, 10);
  jobs[0].ref = saloba::testing::random_seq(rng, 20);
  jobs[1].query = saloba::testing::random_seq(rng, 30);
  jobs[1].ref = saloba::testing::random_seq(rng, 40);
  jobs[2].query = saloba::testing::random_seq(rng, 50);
  jobs[2].ref = saloba::testing::random_seq(rng, 60);
  auto batch = jobs_to_batch(jobs);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.queries[0], jobs[0].query);
  EXPECT_EQ(batch.refs[2], jobs[2].ref);
}

}  // namespace
}  // namespace saloba::seedext
