#include "seedext/fm_index.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {
namespace {

std::size_t naive_count(const std::vector<seq::BaseCode>& text,
                        const std::vector<seq::BaseCode>& pattern) {
  if (pattern.empty() || pattern.size() > text.size()) return 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + static_cast<std::ptrdiff_t>(i))) {
      ++count;
    }
  }
  return count;
}

TEST(FmIndex, CountsKnownPattern) {
  auto text = seq::encode_string("GATTACAGATTACAGATT");
  FmIndex index(text);
  EXPECT_EQ(index.count(seq::encode_string("GATT")), 3u);
  EXPECT_EQ(index.count(seq::encode_string("GATTACA")), 2u);
  EXPECT_EQ(index.count(seq::encode_string("CCC")), 0u);
}

TEST(FmIndex, LocatePositionsAreRealOccurrences) {
  util::Xoshiro256 rng(121);
  auto text = saloba::testing::random_seq(rng, 5000);
  FmIndex index(text);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t pos = rng.below(text.size() - 12);
    std::vector<seq::BaseCode> pattern(text.begin() + static_cast<std::ptrdiff_t>(pos),
                                       text.begin() + static_cast<std::ptrdiff_t>(pos + 12));
    auto hits = index.locate(pattern);
    EXPECT_FALSE(hits.empty());
    bool found_planted = false;
    for (auto hit : hits) {
      ASSERT_LE(hit + 12, text.size());
      EXPECT_TRUE(std::equal(pattern.begin(), pattern.end(),
                             text.begin() + static_cast<std::ptrdiff_t>(hit)));
      found_planted |= hit == pos;
    }
    EXPECT_TRUE(found_planted);
  }
}

TEST(FmIndex, CountMatchesNaiveOnRandomPatterns) {
  util::Xoshiro256 rng(122);
  auto text = saloba::testing::random_seq(rng, 2000);
  FmIndex index(text);
  for (int trial = 0; trial < 50; ++trial) {
    auto pattern = saloba::testing::random_seq(rng, 1 + rng.below(10));
    EXPECT_EQ(index.count(pattern), naive_count(text, pattern));
  }
}

TEST(FmIndex, MaxHitsCapsLocate) {
  std::vector<seq::BaseCode> text(1000, seq::kBaseA);
  FmIndex index(text);
  auto hits = index.locate(seq::encode_string("AAAA"), 10);
  EXPECT_EQ(hits.size(), 10u);
}

TEST(FmIndex, ExtendLeftStepsMatchSearch) {
  util::Xoshiro256 rng(123);
  auto text = saloba::testing::random_seq(rng, 3000);
  FmIndex index(text);
  auto pattern = saloba::testing::random_seq(rng, 8);
  FmIndex::Interval iv = index.whole_text();
  for (std::size_t k = pattern.size(); k-- > 0;) iv = index.extend_left(iv, pattern[k]);
  EXPECT_EQ(iv.size(), index.count(pattern));
}

TEST(FmIndex, EmptyPatternMatchesEverywhere) {
  auto text = seq::encode_string("ACGT");
  FmIndex index(text);
  EXPECT_EQ(index.count({}), text.size() + 1);  // all rows, incl. sentinel
}

TEST(FmIndex, NIsSearchableAsLiteral) {
  auto text = seq::encode_string("ACGNNACG");
  FmIndex index(text);
  EXPECT_EQ(index.count(seq::encode_string("NN")), 1u);
  EXPECT_EQ(index.count(seq::encode_string("GN")), 1u);
}

TEST(FmIndex, TextSizeReported) {
  auto text = seq::encode_string("ACGTACGT");
  FmIndex index(text);
  EXPECT_EQ(index.text_size(), 8u);
}

}  // namespace
}  // namespace saloba::seedext
