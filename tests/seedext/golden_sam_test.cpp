// Golden-SAM end-to-end regression for the batched traceback refactor: the
// pre-refactor per-read path — a full-matrix smith_waterman_traceback of
// each mapped read's genome window on the caller thread — is reimplemented
// here verbatim as the golden oracle, and every new path must emit
// byte-identical SAM: the engine fallback inside to_sam_record, the batched
// map_batch(reads, extend, trace) pipeline, and the streamed
// map_stream(..., trace, writer) pipeline. Streamed == one-shot, byte for
// byte, with traceback enabled.
#include <sstream>

#include <gtest/gtest.h>

#include "align/traceback.hpp"
#include "core/aligner.hpp"
#include "seedext/sam_output.hpp"
#include "seq/chunk_reader.hpp"
#include "seq/fasta.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"

namespace saloba::seedext {
namespace {

/// The pre-refactor to_sam_record, kept bit-exact: re-derives the CIGAR by
/// a full-matrix traceback of the oriented read against a window around the
/// mapped position.
seq::SamRecord legacy_sam_record(const ReadMapper& mapper, const seq::Sequence& read,
                                 const ReadMapping& mapping,
                                 const std::string& reference_name) {
  seq::SamRecord record;
  record.qname = read.name.empty() ? "read" : read.name;
  record.seq = read.to_string();
  if (read.quality.size() == read.bases.size()) record.qual = read.quality;
  if (!mapping.mapped) {
    record.flags = seq::SamRecord::kFlagUnmapped;
    return record;
  }
  record.rname = reference_name;
  record.flags = mapping.reverse_strand ? seq::SamRecord::kFlagReverse : 0;

  const auto& genome = mapper.genome();
  std::vector<seq::BaseCode> oriented =
      mapping.reverse_strand ? seq::reverse_complement(read.bases) : read.bases;
  std::size_t slack = std::max<std::size_t>(32, oriented.size() / 5);
  std::size_t win_start = mapping.ref_pos > slack ? mapping.ref_pos - slack : 0;
  std::size_t win_end = std::min(genome.size(), mapping.ref_pos + oriented.size() + slack);
  std::span<const seq::BaseCode> window(genome.data() + win_start, win_end - win_start);

  auto traced = align::smith_waterman_traceback(window, oriented, mapper.params().scoring);
  if (traced.end.score <= 0) {
    record.flags |= seq::SamRecord::kFlagUnmapped;
    return record;
  }
  record.pos = win_start + static_cast<std::size_t>(traced.ref_start) + 1;
  std::string cigar;
  if (traced.query_start > 0) cigar += std::to_string(traced.query_start) + "S";
  cigar += traced.cigar;
  std::size_t tail = oriented.size() - static_cast<std::size_t>(traced.end.query_end) - 1;
  if (tail > 0) cigar += std::to_string(tail) + "S";
  record.cigar = cigar;
  record.mapq =
      mapq_from_score(traced.end.score, read.bases.size(), mapper.params().scoring);
  record.tags.push_back("AS:i:" + std::to_string(traced.end.score));
  return record;
}

struct Fixture {
  std::vector<seq::BaseCode> genome;
  std::unique_ptr<ReadMapper> mapper;
  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;

  Fixture() {
    seq::GenomeParams gp;
    gp.length = 120000;
    gp.n_fraction = 0.0;
    gp.repeat_fraction = 0.05;
    genome = seq::generate_genome(gp);
    mapper = std::make_unique<ReadMapper>(genome, MapperParams{});

    seq::ReadProfile profile = seq::ReadProfile::equal_length(120);
    profile.mutation_rate = 0.01;
    profile.error_rate = 0.005;
    seq::ReadSimulator sim(genome, profile, 7);
    for (auto& r : sim.simulate(60)) reads.push_back(r.read);
    for (auto& r : reads) {
      // Give every read a quality string so the FASTQ round trip of the
      // streamed path carries exactly what the resident path sees.
      if (r.quality.size() != r.bases.size()) r.quality.assign(r.bases.size(), 'I');
    }
    for (const auto& r : reads) read_seqs.push_back(r.bases);
  }

  /// The golden text: legacy per-read records over plain map_batch.
  std::string golden(const BatchExtender& extend) const {
    auto mappings = mapper->map_batch(read_seqs, extend);
    std::ostringstream out;
    seq::SamWriter writer(out, header());
    for (std::size_t i = 0; i < reads.size(); ++i) {
      writer.write(legacy_sam_record(*mapper, reads[i], mappings[i], "chrT"));
    }
    return out.str();
  }

  seq::SamHeader header() const {
    seq::SamHeader h;
    h.reference_name = "chrT";
    h.reference_length = genome.size();
    return h;
  }

  std::string fastq() const {
    std::ostringstream out;
    seq::write_fastq(out, reads);
    return out.str();
  }
};

TEST(GoldenSam, EngineFallbackMatchesLegacyByteForByte) {
  Fixture f;
  core::Aligner aligner{core::AlignerOptions{}};
  std::string want = f.golden(aligner.batch_extender());

  // No traced extender: to_sam_record's linear-memory fallback.
  auto mappings = f.mapper->map_batch(f.read_seqs, aligner.batch_extender());
  std::ostringstream out;
  seq::SamWriter writer(out, f.header());
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    writer.write(to_sam_record(*f.mapper, f.reads[i], mappings[i], "chrT"));
  }
  EXPECT_EQ(out.str(), want);
}

TEST(GoldenSam, BatchedTracebackPipelineMatchesLegacyByteForByte) {
  Fixture f;
  core::AlignerOptions opts;
  opts.traceback = true;
  core::Aligner aligner(opts);
  std::string want = f.golden(aligner.batch_extender());

  // The full two-phase pipeline: extensions and window CIGARs both batched
  // through the scheduler; to_sam_record consumes the stored traces.
  auto mappings =
      f.mapper->map_batch(f.read_seqs, aligner.batch_extender(), aligner.traced_extender());
  std::size_t traced = 0;
  std::ostringstream out;
  seq::SamWriter writer(out, f.header());
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    traced += mappings[i].has_traceback;
    writer.write(to_sam_record(*f.mapper, f.reads[i], mappings[i], "chrT"));
  }
  EXPECT_EQ(out.str(), want);
  // The point of the refactor: mapped reads actually carry batched CIGARs.
  std::size_t mapped = 0;
  for (const auto& m : mappings) mapped += m.mapped;
  EXPECT_EQ(traced, mapped);
  EXPECT_GT(mapped, f.reads.size() / 2);
}

TEST(GoldenSam, StreamedTracebackSamMatchesOneShotAndLegacy) {
  Fixture f;
  core::AlignerOptions opts;
  opts.traceback = true;
  core::Aligner aligner(opts);
  std::string want = f.golden(aligner.batch_extender());

  std::istringstream fastq(f.fastq());
  seq::FastqChunkReader reader(fastq, /*chunk_records=*/13);
  std::ostringstream streamed;
  seq::SamWriter writer(streamed, f.header());
  auto stats = f.mapper->map_stream(reader, aligner.batch_extender(),
                                    aligner.traced_extender(), writer, "chrT",
                                    /*queue_capacity=*/3);
  EXPECT_EQ(stats.reads, f.reads.size());
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_EQ(streamed.str(), want);
}

TEST(GoldenSam, BandedTracedExtenderStillMatchesLegacy) {
  // Regression: the window-trace batch pins explicit full-table bands, so a
  // traced extender built from a banded aligner (a normal extension config)
  // must not get the band policy materialized onto the window pairs — the
  // window slack offsets the alignment diagonal, and a narrow band there
  // would silently corrupt CIGARs and positions.
  Fixture f;
  core::Aligner plain{core::AlignerOptions{}};
  std::string want = f.golden(plain.batch_extender());

  core::AlignerOptions banded;
  banded.band = 8;
  banded.traceback = true;
  core::Aligner trace_aligner(banded);
  auto mappings =
      f.mapper->map_batch(f.read_seqs, plain.batch_extender(), trace_aligner.traced_extender());
  std::ostringstream out;
  seq::SamWriter writer(out, f.header());
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    writer.write(to_sam_record(*f.mapper, f.reads[i], mappings[i], "chrT"));
  }
  EXPECT_EQ(out.str(), want);
}

TEST(GoldenSam, SimdBackendPipelineMatchesLegacyByteForByte) {
  // The inter-sequence SIMD backend as the extension engine: batched
  // two-phase pipeline through device="simd" must reproduce the scalar
  // CPU golden SAM byte for byte (scores, endpoints, CIGARs, positions).
  Fixture f;
  core::Aligner cpu{core::AlignerOptions{}};
  std::string want = f.golden(cpu.batch_extender());

  core::AlignerOptions opts;
  opts.device = "simd";
  opts.traceback = true;
  core::Aligner simd(opts);
  auto mappings =
      f.mapper->map_batch(f.read_seqs, simd.batch_extender(), simd.traced_extender());
  std::ostringstream out;
  seq::SamWriter writer(out, f.header());
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    writer.write(to_sam_record(*f.mapper, f.reads[i], mappings[i], "chrT"));
  }
  EXPECT_EQ(out.str(), want);
}

TEST(GoldenSam, EngineTraceFallbackInsideMapBatchMatchesLegacy) {
  Fixture f;
  core::Aligner aligner{core::AlignerOptions{}};
  std::string want = f.golden(aligner.batch_extender());

  // Null traced extender: the mapper's in-process engine stage.
  auto mappings = f.mapper->map_batch(f.read_seqs, aligner.batch_extender(),
                                      TracedBatchExtender{});
  std::ostringstream out;
  seq::SamWriter writer(out, f.header());
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    writer.write(to_sam_record(*f.mapper, f.reads[i], mappings[i], "chrT"));
  }
  EXPECT_EQ(out.str(), want);
}

}  // namespace
}  // namespace saloba::seedext
