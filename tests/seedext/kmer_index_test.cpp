#include "seedext/kmer_index.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {
namespace {

TEST(KmerIndex, FindsAllOccurrences) {
  util::Xoshiro256 rng(131);
  auto text = saloba::testing::random_seq(rng, 3000);
  KmerIndex index(text, 11);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t pos = rng.below(text.size() - 11);
    std::span<const seq::BaseCode> kmer(text.data() + pos, 11);
    auto hits = index.lookup(kmer);
    // Naive expected positions.
    std::set<std::uint32_t> expected;
    for (std::size_t i = 0; i + 11 <= text.size(); ++i) {
      if (std::equal(kmer.begin(), kmer.end(), text.begin() + static_cast<std::ptrdiff_t>(i))) {
        expected.insert(static_cast<std::uint32_t>(i));
      }
    }
    std::set<std::uint32_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(KmerIndex, NKmersNotIndexed) {
  auto text = seq::encode_string("ACGTNACGTACGT");
  KmerIndex index(text, 5);
  // Any window overlapping the N is absent.
  EXPECT_TRUE(index.lookup(seq::encode_string("CGTNA")).empty());
  EXPECT_FALSE(index.lookup(seq::encode_string("ACGTA")).empty());
}

TEST(KmerIndex, LookupOfAbsentKmer) {
  std::vector<seq::BaseCode> text(100, seq::kBaseA);
  KmerIndex index(text, 8);
  EXPECT_TRUE(index.lookup(seq::encode_string("CCCCCCCC")).empty());
  EXPECT_EQ(index.lookup(seq::encode_string("AAAAAAAA")).size(), 93u);
}

TEST(KmerIndex, PackKmerRejectsN) {
  auto kmer = seq::encode_string("ACGN");
  EXPECT_FALSE(KmerIndex::pack_kmer(kmer, 4).has_value());
  EXPECT_TRUE(KmerIndex::pack_kmer(seq::encode_string("ACGT"), 4).has_value());
}

TEST(KmerIndex, PackKmerIsInjectiveOnSmallK) {
  std::set<std::uint64_t> keys;
  std::vector<seq::BaseCode> kmer(4);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      for (int c = 0; c < 4; ++c)
        for (int d = 0; d < 4; ++d) {
          kmer = {static_cast<seq::BaseCode>(a), static_cast<seq::BaseCode>(b),
                  static_cast<seq::BaseCode>(c), static_cast<seq::BaseCode>(d)};
          keys.insert(*KmerIndex::pack_kmer(kmer, 4));
        }
  EXPECT_EQ(keys.size(), 256u);
}

TEST(KmerIndex, CountsAndSizes) {
  auto text = seq::encode_string("ACGTACGT");
  KmerIndex index(text, 4);
  EXPECT_EQ(index.k(), 4);
  EXPECT_EQ(index.indexed_positions(), 5u);
  EXPECT_EQ(index.distinct_kmers(), 4u);  // ACGT, CGTA, GTAC, TACG
}

TEST(KmerIndex, TextShorterThanK) {
  auto text = seq::encode_string("ACG");
  KmerIndex index(text, 8);
  EXPECT_EQ(index.indexed_positions(), 0u);
  EXPECT_TRUE(index.lookup(seq::encode_string("ACGTACGT")).empty());
}

TEST(KmerIndexDeath, RejectsBadK) {
  auto text = seq::encode_string("ACGTACGT");
  EXPECT_DEATH(KmerIndex(text, 2), "k must be");
  EXPECT_DEATH(KmerIndex(text, 40), "k must be");
}

}  // namespace
}  // namespace saloba::seedext
