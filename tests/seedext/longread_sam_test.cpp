// Long-read golden SAM: 100 kbp+ simulated nanopore reads mapped through
// the long-read route (core::LongReadPolicy → align::xdrop_wavefront) emit
// byte-stable SAM — two independent pipeline constructions produce
// identical bytes, a pinned FNV-1a digest locks the text against silent
// drift, and every stored trace is a consistent CIGAR that rescores to its
// reported score. Short-read workloads are routing-invariant: with the
// threshold far above every pair the SAM is byte-identical to a run with
// routing disabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "align/traceback.hpp"
#include "core/aligner.hpp"
#include "seedext/sam_output.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"

namespace saloba::seedext {
namespace {

/// FNV-1a 64-bit of the SAM text — a compact stability fingerprint.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::size_t kRouteThreshold = 40000;

core::AlignerOptions longread_options() {
  core::AlignerOptions opts;
  opts.traceback = true;
  opts.longread_threshold = kRouteThreshold;  // routes every 100 kbp window trace
  // A tight live window keeps the 100 kbp wavefronts thin (the sweep is
  // O((N+M) · xdrop/beta) cells); stability, not sensitivity, is on trial.
  opts.xdrop = 60;
  return opts;
}

struct LongReadFixture {
  std::vector<seq::BaseCode> genome;
  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;

  LongReadFixture() {
    seq::GenomeParams gp;
    gp.length = 250000;
    gp.n_fraction = 0.0;
    gp.repeat_fraction = 0.05;
    genome = seq::generate_genome(gp);

    seq::ReadProfile profile = seq::ReadProfile::nanopore_ultralong(100000);
    profile.length_min = 100000;  // the suite's contract is 100 kbp+ reads
    seq::ReadSimulator sim(genome, profile, 41);
    for (auto& r : sim.simulate(2)) reads.push_back(r.read);
    for (const auto& r : reads) read_seqs.push_back(r.bases);
  }

  /// One full pipeline run from scratch: fresh mapper, fresh aligner, SAM
  /// text out. Mappings are returned for trace-level assertions.
  std::string run(std::vector<ReadMapping>* mappings_out = nullptr) const {
    ReadMapper mapper(genome, MapperParams{});
    core::Aligner aligner(longread_options());
    auto mappings =
        mapper.map_batch(read_seqs, aligner.batch_extender(), aligner.traced_extender());
    std::ostringstream out;
    seq::SamHeader header;
    header.reference_name = "chrL";
    header.reference_length = genome.size();
    seq::SamWriter writer(out, header);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      writer.write(to_sam_record(mapper, reads[i], mappings[i], "chrL"));
    }
    if (mappings_out) *mappings_out = std::move(mappings);
    return out.str();
  }
};

TEST(LongReadSam, UltraLongReadsEmitByteStableSam) {
  LongReadFixture f;
  for (const auto& r : f.reads) {
    ASSERT_GE(r.bases.size(), 100000u);  // the route actually engages
  }

  std::vector<ReadMapping> mappings;
  const std::string first = f.run(&mappings);
  const std::string second = f.run();
  EXPECT_EQ(first, second);
  // The pinned golden digest: every engine in the route — seeding,
  // chaining, extension, wavefront score + Myers-Miller CIGAR, MAPQ — is
  // integer-deterministic, so this locks the exact SAM bytes against silent
  // drift in any of them. A legitimate output change must re-pin it.
  EXPECT_EQ(fnv1a(first), 17299238629461482283ull);

  std::size_t mapped = 0;
  const align::ScoringScheme scoring;
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    const ReadMapping& m = mappings[i];
    if (!m.mapped) continue;
    ++mapped;
    ASSERT_TRUE(m.has_traceback) << "read " << i;
    const std::size_t oriented_len = f.reads[i].bases.size();
    const MappedWindow win = mapped_window(f.genome.size(), m.ref_pos, oriented_len);
    EXPECT_TRUE(align::cigar_consistent(m.traced, win.end - win.start, oriented_len))
        << "read " << i;
    // The stored trace rescores to exactly its reported endpoint score —
    // the wavefront's CIGAR contract, surviving the whole pipeline.
    std::span<const seq::BaseCode> window(f.genome.data() + win.start,
                                          win.end - win.start);
    std::vector<seq::BaseCode> oriented = m.reverse_strand
                                              ? seq::reverse_complement(f.reads[i].bases)
                                              : f.reads[i].bases;
    EXPECT_EQ(align::rescore_cigar(m.traced, window, oriented, scoring),
              m.traced.end.score)
        << "read " << i;
  }
  EXPECT_GT(mapped, 0u);
}

TEST(LongReadSam, ShortReadSamIsRoutingInvariant) {
  // A classic short-read workload with routing enabled (threshold far above
  // every pair) must emit bytes identical to routing disabled — the
  // pre-existing golden_sam_test contract is untouched by this PR.
  seq::GenomeParams gp;
  gp.length = 120000;
  gp.n_fraction = 0.0;
  gp.repeat_fraction = 0.05;
  const auto genome = seq::generate_genome(gp);

  seq::ReadProfile profile = seq::ReadProfile::equal_length(120);
  profile.mutation_rate = 0.01;
  profile.error_rate = 0.005;
  seq::ReadSimulator sim(genome, profile, 7);
  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;
  for (auto& r : sim.simulate(40)) reads.push_back(r.read);
  for (const auto& r : reads) read_seqs.push_back(r.bases);

  auto emit = [&](const core::AlignerOptions& opts) {
    ReadMapper mapper(genome, MapperParams{});
    core::Aligner aligner(opts);
    auto mappings =
        mapper.map_batch(read_seqs, aligner.batch_extender(), aligner.traced_extender());
    std::ostringstream out;
    seq::SamHeader header;
    header.reference_name = "chrS";
    header.reference_length = genome.size();
    seq::SamWriter writer(out, header);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      writer.write(to_sam_record(mapper, reads[i], mappings[i], "chrS"));
    }
    return out.str();
  };

  core::AlignerOptions routed = longread_options();
  core::AlignerOptions off = routed;
  off.longread_threshold = 0;
  EXPECT_EQ(emit(routed), emit(off));
}

}  // namespace
}  // namespace saloba::seedext
