#include "seedext/pipeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "align/batch.hpp"
#include "seq/chunk_reader.hpp"
#include "seq/fasta.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "seq/sam.hpp"
#include "util/stats.hpp"

namespace saloba::seedext {
namespace {

std::vector<seq::BaseCode> pipeline_genome(std::uint64_t seed = 42) {
  seq::GenomeParams p;
  p.length = 300000;
  p.repeat_fraction = 0.05;  // repeat-light for unambiguous mapping checks
  p.n_fraction = 0.0;
  p.seed = seed;
  return seq::generate_genome(p);
}

TEST(Pipeline, ErrorFreeReadsMapToTruePosition) {
  auto genome = pipeline_genome();
  seq::ReadProfile profile = seq::ReadProfile::equal_length(150);
  profile.mutation_rate = 0.0;
  profile.error_rate = 0.0;
  seq::ReadSimulator sim(genome, profile, 7);
  ReadMapper mapper(genome, MapperParams{});

  int correct = 0, total = 0;
  for (const auto& r : sim.simulate(50)) {
    auto mapping = mapper.map(r.read.bases);
    ASSERT_TRUE(mapping.mapped);
    EXPECT_EQ(mapping.reverse_strand, r.reverse_strand);
    ++total;
    if (mapping.ref_pos == r.true_pos) ++correct;
  }
  // Repeats can relocate a handful of reads; demand a high exact-hit rate.
  EXPECT_GE(correct, total * 9 / 10);
}

TEST(Pipeline, NoisyReadsStillMapNearby) {
  auto genome = pipeline_genome(43);
  seq::ReadProfile profile = seq::ReadProfile::illumina_250bp();
  seq::ReadSimulator sim(genome, profile, 8);
  ReadMapper mapper(genome, MapperParams{});

  int near = 0, total = 0;
  for (const auto& r : sim.simulate(40)) {
    auto mapping = mapper.map(r.read.bases);
    ++total;
    if (!mapping.mapped) continue;
    auto dist = mapping.ref_pos > r.true_pos ? mapping.ref_pos - r.true_pos
                                             : r.true_pos - mapping.ref_pos;
    if (dist < 30) ++near;
  }
  EXPECT_GE(near, total * 8 / 10);
}

TEST(Pipeline, MapBatchMatchesSingleMapping) {
  auto genome = pipeline_genome(44);
  seq::ReadProfile profile = seq::ReadProfile::equal_length(120);
  seq::ReadSimulator sim(genome, profile, 9);
  ReadMapper mapper(genome, MapperParams{});
  std::vector<std::vector<seq::BaseCode>> reads;
  for (const auto& r : sim.simulate(20)) reads.push_back(r.read.bases);
  auto batch = mapper.map_batch(reads);
  ASSERT_EQ(batch.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    auto single = mapper.map(reads[i]);
    EXPECT_EQ(batch[i].mapped, single.mapped);
    EXPECT_EQ(batch[i].ref_pos, single.ref_pos);
    EXPECT_EQ(batch[i].score, single.score);
  }
}

TEST(Pipeline, CollectJobsProducesRealisticLengthSpread) {
  auto genome = pipeline_genome(45);
  seq::ReadProfile profile = seq::ReadProfile::illumina_250bp();
  seq::ReadSimulator sim(genome, profile, 10);
  ReadMapper mapper(genome, MapperParams{});
  std::vector<std::vector<seq::BaseCode>> reads;
  for (const auto& r : sim.simulate(100)) reads.push_back(r.read.bases);
  auto jobs = mapper.collect_jobs(reads);
  ASSERT_FALSE(jobs.empty());

  std::vector<double> qlens;
  for (const auto& j : jobs) {
    EXPECT_LE(j.query.size(), 280u);  // bounded by read length (plus indels)
    EXPECT_FALSE(j.ref.empty());
    // Reference window is wider than the query side (BWA-MEM banding),
    // except when clamped at a genome edge.
    qlens.push_back(static_cast<double>(j.query.size()));
  }
  // Fig. 2 property: lengths are spread out, not clustered.
  EXPECT_GT(util::coeff_variation(qlens), 0.3);
}

TEST(Pipeline, FmSeedingPathWorks) {
  auto genome = pipeline_genome(46);
  seq::ReadProfile profile = seq::ReadProfile::equal_length(100);
  profile.mutation_rate = 0.0;
  profile.error_rate = 0.0;
  seq::ReadSimulator sim(genome, profile, 11);
  MapperParams params;
  params.use_fm_seeding = true;
  ReadMapper mapper(genome, params);
  int mapped = 0;
  for (const auto& r : sim.simulate(15)) {
    auto m = mapper.map(r.read.bases);
    mapped += m.mapped && m.ref_pos == r.true_pos;
  }
  EXPECT_GE(mapped, 13);
}

TEST(Pipeline, EmptyReadDoesNotMap) {
  auto genome = pipeline_genome(47);
  ReadMapper mapper(genome, MapperParams{});
  EXPECT_FALSE(mapper.map({}).mapped);
}

void expect_same_mappings(const std::vector<ReadMapping>& a,
                          const std::vector<ReadMapping>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapped, b[i].mapped) << "read " << i;
    EXPECT_EQ(a[i].ref_pos, b[i].ref_pos) << "read " << i;
    EXPECT_EQ(a[i].reverse_strand, b[i].reverse_strand) << "read " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "read " << i;
  }
}

TEST(Pipeline, BatchedExtenderMatchesPerJobPath) {
  // Routing the extension stage through a BatchExtender (the scheduler-
  // shaped hook) must reproduce the per-job CPU mappings exactly.
  auto genome = pipeline_genome(48);
  seq::ReadProfile profile = seq::ReadProfile::illumina_250bp();
  seq::ReadSimulator sim(genome, profile, 12);
  ReadMapper mapper(genome, MapperParams{});
  std::vector<std::vector<seq::BaseCode>> reads;
  for (const auto& r : sim.simulate(30)) reads.push_back(r.read.bases);

  auto per_job = mapper.map_batch(reads);
  BatchExtender cpu_extender = [&](const seq::PairBatch& batch) {
    return align::align_batch(batch, mapper.params().scoring);
  };
  expect_same_mappings(mapper.map_batch(reads, cpu_extender), per_job);
}

TEST(Pipeline, BatchedExtenderHandlesUnmappableReads) {
  auto genome = pipeline_genome(49);
  ReadMapper mapper(genome, MapperParams{});
  // Reads with no seeds anywhere: all-identical non-genomic garbage is
  // unlikely to seed; also include an empty read.
  std::vector<std::vector<seq::BaseCode>> reads(3);
  reads[1].assign(200, seq::kBaseN);
  std::size_t extender_calls = 0;
  BatchExtender counting = [&](const seq::PairBatch& batch) {
    ++extender_calls;
    return align::align_batch(batch, mapper.params().scoring);
  };
  auto mappings = mapper.map_batch(reads, counting);
  ASSERT_EQ(mappings.size(), 3u);
  EXPECT_FALSE(mappings[0].mapped);
  EXPECT_FALSE(mappings[1].mapped);
  // No jobs → the extender is never invoked with an empty batch.
  EXPECT_EQ(extender_calls, 0u);
}

TEST(Pipeline, MapStreamMatchesResidentMapBatch) {
  // The streaming FASTQ path (chunked ingest, bounded queue, batched
  // extension per chunk) must reproduce map_batch over the same reads,
  // in the same order.
  auto genome = pipeline_genome(50);
  seq::ReadProfile profile = seq::ReadProfile::illumina_250bp();
  seq::ReadSimulator sim(genome, profile, 13);
  ReadMapper mapper(genome, MapperParams{});

  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;
  for (auto& r : sim.simulate(30)) {
    read_seqs.push_back(r.read.bases);
    reads.push_back(std::move(r.read));
  }
  BatchExtender cpu_extender = [&](const seq::PairBatch& batch) {
    return align::align_batch(batch, mapper.params().scoring);
  };
  auto expected = mapper.map_batch(read_seqs, cpu_extender);

  std::ostringstream fq;
  seq::write_fastq(fq, reads);
  std::istringstream in(fq.str());
  seq::FastqChunkReader reader(in, 7);  // several chunks

  std::vector<ReadMapping> streamed;
  std::vector<std::string> names;
  auto stats = mapper.map_stream(
      reader, cpu_extender,
      [&](const seq::Sequence& read, const ReadMapping& mapping) {
        names.push_back(read.name);
        streamed.push_back(mapping);
      },
      2);
  EXPECT_EQ(stats.reads, reads.size());
  EXPECT_GE(stats.chunks, 4u);
  expect_same_mappings(streamed, expected);
  for (std::size_t i = 0; i < reads.size(); ++i) EXPECT_EQ(names[i], reads[i].name);
}

TEST(Pipeline, MapStreamWritesSamIncrementally) {
  auto genome = pipeline_genome(51);
  seq::ReadProfile profile = seq::ReadProfile::equal_length(120);
  profile.mutation_rate = 0.0;
  profile.error_rate = 0.0;
  seq::ReadSimulator sim(genome, profile, 14);
  ReadMapper mapper(genome, MapperParams{});

  std::vector<seq::Sequence> reads;
  for (auto& r : sim.simulate(12)) reads.push_back(std::move(r.read));
  std::ostringstream fq;
  seq::write_fastq(fq, reads);
  std::istringstream in(fq.str());
  seq::FastqChunkReader reader(in, 5);

  BatchExtender cpu_extender = [&](const seq::PairBatch& batch) {
    return align::align_batch(batch, mapper.params().scoring);
  };
  std::ostringstream sam_text;
  seq::SamHeader header;
  header.reference_length = genome.size();
  seq::SamWriter writer(sam_text, header);
  auto stats = mapper.map_stream(reader, cpu_extender, writer, "chrT", 2);

  EXPECT_EQ(stats.reads, reads.size());
  EXPECT_EQ(writer.records_written(), reads.size());
  std::istringstream sam_in(sam_text.str());
  auto records = seq::read_sam(sam_in);
  ASSERT_EQ(records.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(records[i].qname, reads[i].name);  // input order preserved
  }
  EXPECT_EQ(stats.mapped, reads.size());  // error-free reads all map
}

TEST(Pipeline, MapStreamSurfacesReaderErrors) {
  auto genome = pipeline_genome(52);
  ReadMapper mapper(genome, MapperParams{});
  // Truncated second record: the producer thread throws; map_stream must
  // join cleanly and rethrow on the calling thread.
  std::istringstream in("@r0\nACGT\n+\nIIII\n@r1\nACGT\n+\n");
  seq::FastqChunkReader reader(in, 1);
  BatchExtender cpu_extender = [&](const seq::PairBatch& batch) {
    return align::align_batch(batch, mapper.params().scoring);
  };
  EXPECT_THROW(mapper.map_stream(reader, cpu_extender, nullptr, 2), std::runtime_error);
}

TEST(Pipeline, SeedsOfExposesForwardSeeds) {
  auto genome = pipeline_genome(48);
  ReadMapper mapper(genome, MapperParams{});
  std::vector<seq::BaseCode> read(genome.begin() + 1000, genome.begin() + 1100);
  auto seeds = mapper.seeds_of(read);
  ASSERT_FALSE(seeds.empty());
  bool found = false;
  for (const auto& s : seeds) found |= s.rpos == 1000 && s.len == 100;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace saloba::seedext
