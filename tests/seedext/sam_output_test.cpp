#include "seedext/sam_output.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "align/traceback.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"

namespace saloba::seedext {
namespace {

struct Fixture {
  std::vector<seq::BaseCode> genome;
  std::unique_ptr<ReadMapper> mapper;

  Fixture() {
    seq::GenomeParams p;
    p.length = 200000;
    p.n_fraction = 0.0;
    p.repeat_fraction = 0.05;
    genome = seq::generate_genome(p);
    mapper = std::make_unique<ReadMapper>(genome, MapperParams{});
  }
};

TEST(SamOutput, MappedReadProducesValidRecord) {
  Fixture f;
  seq::Sequence read;
  read.name = "exact_read";
  read.bases.assign(f.genome.begin() + 5000, f.genome.begin() + 5150);
  auto mapping = f.mapper->map(read.bases);
  ASSERT_TRUE(mapping.mapped);

  auto record = to_sam_record(*f.mapper, read, mapping, "chrT");
  EXPECT_EQ(record.qname, "exact_read");
  EXPECT_FALSE(record.unmapped());
  EXPECT_EQ(record.rname, "chrT");
  EXPECT_EQ(record.pos, 5001u);  // SAM is 1-based
  EXPECT_EQ(record.cigar, "150M");
  EXPECT_GE(record.mapq, 50);
  ASSERT_FALSE(record.tags.empty());
  EXPECT_EQ(record.tags[0], "AS:i:150");
}

TEST(SamOutput, ReverseStrandSetsFlag) {
  Fixture f;
  seq::Sequence read;
  read.name = "rc_read";
  std::vector<seq::BaseCode> window(f.genome.begin() + 9000, f.genome.begin() + 9120);
  read.bases = seq::reverse_complement(window);
  auto mapping = f.mapper->map(read.bases);
  ASSERT_TRUE(mapping.mapped);
  ASSERT_TRUE(mapping.reverse_strand);
  auto record = to_sam_record(*f.mapper, read, mapping);
  EXPECT_TRUE(record.flags & seq::SamRecord::kFlagReverse);
  EXPECT_EQ(record.pos, 9001u);
}

TEST(SamOutput, UnmappedReadFlagged) {
  Fixture f;
  seq::Sequence read;
  read.name = "junk";
  read.bases = seq::encode_string(std::string(60, 'A'));  // unlikely unique hit
  ReadMapping unmapped;  // mapped = false
  auto record = to_sam_record(*f.mapper, read, unmapped);
  EXPECT_TRUE(record.unmapped());
  EXPECT_EQ(record.cigar, "*");
}

TEST(SamOutput, IndelReadGetsIndelCigar) {
  Fixture f;
  seq::Sequence read;
  read.name = "del_read";
  // 80 bases, skip 3, 70 more -> CIGAR should contain a 3D.
  read.bases.assign(f.genome.begin() + 20000, f.genome.begin() + 20080);
  read.bases.insert(read.bases.end(), f.genome.begin() + 20083, f.genome.begin() + 20153);
  auto mapping = f.mapper->map(read.bases);
  ASSERT_TRUE(mapping.mapped);
  auto record = to_sam_record(*f.mapper, read, mapping);
  EXPECT_NE(record.cigar.find("3D"), std::string::npos) << record.cigar;
}

TEST(SamOutput, MapqMonotoneInScore) {
  align::ScoringScheme s;
  int prev = -1;
  for (align::Score score : {0, 30, 60, 90, 120, 150}) {
    int q = mapq_from_score(score, 150, s);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_EQ(mapq_from_score(150, 150, s), 60);
  EXPECT_EQ(mapq_from_score(0, 150, s), 0);
  EXPECT_EQ(mapq_from_score(10, 0, s), 0);
}

TEST(SamOutput, EndToEndSamFileParsesBack) {
  Fixture f;
  seq::ReadProfile profile = seq::ReadProfile::equal_length(100);
  profile.mutation_rate = 0.0;
  profile.error_rate = 0.0;
  seq::ReadSimulator sim(f.genome, profile, 5);
  auto reads = sim.simulate(10);

  std::ostringstream out;
  seq::SamHeader header;
  header.reference_name = "chrT";
  header.reference_length = f.genome.size();
  seq::SamWriter writer(out, header);
  for (const auto& r : reads) {
    auto mapping = f.mapper->map(r.read.bases);
    writer.write(to_sam_record(*f.mapper, r.read, mapping, "chrT"));
  }
  std::istringstream in(out.str());
  auto records = seq::read_sam(in);
  ASSERT_EQ(records.size(), 10u);
  int mapped = 0;
  for (const auto& r : records) mapped += !r.unmapped();
  EXPECT_GE(mapped, 9);
}

}  // namespace
}  // namespace saloba::seedext
