#include "seedext/seeding.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {
namespace {

void expect_seeds_are_exact_matches(const std::vector<Seed>& seeds,
                                    const std::vector<seq::BaseCode>& genome,
                                    const std::vector<seq::BaseCode>& read) {
  for (const Seed& s : seeds) {
    ASSERT_LE(s.qpos + s.len, read.size());
    ASSERT_LE(s.rpos + s.len, genome.size());
    for (std::uint32_t i = 0; i < s.len; ++i) {
      EXPECT_EQ(genome[s.rpos + i], read[s.qpos + i]);
      EXPECT_LT(genome[s.rpos + i], seq::kBaseN);  // N never seeds
    }
  }
}

void expect_seeds_maximal(const std::vector<Seed>& seeds,
                          const std::vector<seq::BaseCode>& genome,
                          const std::vector<seq::BaseCode>& read) {
  auto matches = [](seq::BaseCode a, seq::BaseCode b) { return a == b && a < 4; };
  for (const Seed& s : seeds) {
    if (s.qpos > 0 && s.rpos > 0) {
      EXPECT_FALSE(matches(genome[s.rpos - 1], read[s.qpos - 1])) << "extendable left";
    }
    if (s.qpos + s.len < read.size() && s.rpos + s.len < genome.size()) {
      EXPECT_FALSE(matches(genome[s.rpos + s.len], read[s.qpos + s.len]))
          << "extendable right";
    }
  }
}

struct Fixture {
  std::vector<seq::BaseCode> genome;
  std::vector<seq::BaseCode> read;
  std::size_t planted_pos;

  static Fixture make(std::uint64_t seed, std::size_t genome_len, std::size_t read_len,
                      double mutate_rate) {
    util::Xoshiro256 rng(seed);
    Fixture f;
    f.genome = saloba::testing::random_seq(rng, genome_len);
    f.planted_pos = rng.below(genome_len - read_len);
    f.read.assign(f.genome.begin() + static_cast<std::ptrdiff_t>(f.planted_pos),
                  f.genome.begin() + static_cast<std::ptrdiff_t>(f.planted_pos + read_len));
    f.read = saloba::testing::mutate(rng, f.read, mutate_rate);
    return f;
  }
};

TEST(KmerSeeding, FindsPlantedExactRead) {
  auto f = Fixture::make(141, 20000, 100, 0.0);
  KmerIndex index(f.genome, 16);
  SeedingParams params;
  auto seeds = find_seeds(index, f.genome, f.read, params);
  ASSERT_FALSE(seeds.empty());
  bool found = false;
  for (const Seed& s : seeds) {
    found |= s.rpos == f.planted_pos && s.qpos == 0 && s.len == 100;
  }
  EXPECT_TRUE(found);
  expect_seeds_are_exact_matches(seeds, f.genome, f.read);
  expect_seeds_maximal(seeds, f.genome, f.read);
}

TEST(KmerSeeding, MutatedReadProducesShorterSeeds) {
  auto f = Fixture::make(142, 20000, 200, 0.03);
  KmerIndex index(f.genome, 16);
  SeedingParams params;
  auto seeds = find_seeds(index, f.genome, f.read, params);
  ASSERT_FALSE(seeds.empty());
  expect_seeds_are_exact_matches(seeds, f.genome, f.read);
  expect_seeds_maximal(seeds, f.genome, f.read);
  for (const Seed& s : seeds) {
    EXPECT_GE(s.len, 19u);  // min_seed_len
  }
}

TEST(KmerSeeding, NoDuplicateSeeds) {
  auto f = Fixture::make(143, 10000, 150, 0.02);
  KmerIndex index(f.genome, 12);
  SeedingParams params;
  params.min_seed_len = 12;
  auto seeds = find_seeds(index, f.genome, f.read, params);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> unique;
  for (const Seed& s : seeds) unique.insert({s.qpos, s.rpos, s.len});
  EXPECT_EQ(unique.size(), seeds.size());
}

TEST(KmerSeeding, RespectsMaxHits) {
  // Highly repetitive genome: hits beyond the cap are skipped entirely.
  std::vector<seq::BaseCode> genome;
  for (int i = 0; i < 500; ++i) {
    auto unit = seq::encode_string("ACGTACGTGGCCTTAA");
    genome.insert(genome.end(), unit.begin(), unit.end());
  }
  KmerIndex index(genome, 16);
  SeedingParams params;
  params.max_hits = 4;
  params.min_seed_len = 16;
  std::vector<seq::BaseCode> read = seq::encode_string("ACGTACGTGGCCTTAAACGTACGTGGCCTTAA");
  auto seeds = find_seeds(index, genome, read, params);
  EXPECT_TRUE(seeds.empty());  // every k-mer exceeds the cap
}

TEST(FmSeeding, FindsPlantedExactRead) {
  auto f = Fixture::make(144, 8000, 80, 0.0);
  FmIndex index(f.genome);
  SeedingParams params;
  auto seeds = find_seeds_fm(index, f.read, params);
  ASSERT_FALSE(seeds.empty());
  bool found = false;
  for (const Seed& s : seeds) {
    found |= s.rpos == f.planted_pos && s.len == 80;
  }
  EXPECT_TRUE(found);
  expect_seeds_are_exact_matches(seeds, f.genome, f.read);
}

TEST(FmSeeding, SeedsAreExactMatchesOnMutatedReads) {
  auto f = Fixture::make(145, 8000, 150, 0.04);
  FmIndex index(f.genome);
  SeedingParams params;
  params.min_seed_len = 15;
  auto seeds = find_seeds_fm(index, f.read, params);
  ASSERT_FALSE(seeds.empty());
  expect_seeds_are_exact_matches(seeds, f.genome, f.read);
}

TEST(Seeding, ShortReadYieldsNothing) {
  auto f = Fixture::make(146, 5000, 100, 0.0);
  KmerIndex index(f.genome, 16);
  SeedingParams params;
  std::vector<seq::BaseCode> tiny = seq::encode_string("ACGT");
  EXPECT_TRUE(find_seeds(index, f.genome, tiny, params).empty());
}

TEST(Seeding, SeedDiagonalHelper) {
  Seed s{10, 100, 20};
  EXPECT_EQ(s.diagonal(), 90);
}

}  // namespace
}  // namespace saloba::seedext
