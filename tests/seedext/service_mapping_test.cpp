// Service-backed read mapping: ReadMapper::map_session routes the extension
// (and traceback) phases through one tenant of a shared core::AlignService.
// Mappings — and the SAM bytes downstream — must be identical to the
// private-Aligner map_batch paths over the same reads, alone or with other
// tenants hammering the same service concurrently.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/align_service.hpp"
#include "core/aligner.hpp"
#include "seedext/pipeline.hpp"
#include "seedext/sam_output.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "seq/sam.hpp"

namespace saloba::seedext {
namespace {

struct Fixture {
  std::vector<seq::BaseCode> genome;
  std::unique_ptr<ReadMapper> mapper;
  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;

  explicit Fixture(std::uint64_t seed = 7, std::size_t n_reads = 50) {
    seq::GenomeParams gp;
    gp.length = 100000;
    gp.n_fraction = 0.0;
    gp.repeat_fraction = 0.05;
    genome = seq::generate_genome(gp);
    mapper = std::make_unique<ReadMapper>(genome, MapperParams{});

    seq::ReadProfile profile = seq::ReadProfile::equal_length(110);
    profile.mutation_rate = 0.01;
    profile.error_rate = 0.005;
    seq::ReadSimulator sim(genome, profile, seed);
    for (auto& r : sim.simulate(n_reads)) reads.push_back(r.read);
    for (const auto& r : reads) read_seqs.push_back(r.bases);
  }

  std::string sam_of(const std::vector<ReadMapping>& mappings) const {
    seq::SamHeader h;
    h.reference_name = "chrT";
    h.reference_length = genome.size();
    std::ostringstream out;
    seq::SamWriter writer(out, h);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      writer.write(to_sam_record(*mapper, reads[i], mappings[i], "chrT"));
    }
    return out.str();
  }
};

void expect_same_mappings(const std::vector<ReadMapping>& got,
                          const std::vector<ReadMapping>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].mapped, want[i].mapped) << "read " << i;
    EXPECT_EQ(got[i].ref_pos, want[i].ref_pos) << "read " << i;
    EXPECT_EQ(got[i].reverse_strand, want[i].reverse_strand) << "read " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "read " << i;
    EXPECT_EQ(got[i].has_traceback, want[i].has_traceback) << "read " << i;
    if (got[i].has_traceback) {
      EXPECT_EQ(got[i].traced, want[i].traced) << "read " << i;
    }
  }
}

TEST(ServiceMapping, MapSessionMatchesMapBatchScoreOnly) {
  Fixture f;
  core::AlignerOptions opts;  // CPU, score-only
  core::Aligner aligner(opts);
  ChainStageStats want_chain;
  auto want = f.mapper->map_batch(f.read_seqs, aligner.batch_extender(), &want_chain);

  core::ServiceOptions svc;
  svc.batch_pairs = 16;
  core::AlignService service(opts, svc);
  ChainStageStats got_chain;
  auto got = f.mapper->map_session(f.read_seqs, service, {}, &got_chain);

  expect_same_mappings(got, want);
  EXPECT_EQ(got_chain.tasks, want_chain.tasks);
  EXPECT_EQ(got_chain.anchors, want_chain.anchors);
  EXPECT_GT(service.stats().pairs, 0u);
}

TEST(ServiceMapping, MapSessionTracebackMatchesMapBatchAndSamBytes) {
  // With traceback enabled on the service, map_session runs both phases
  // through it; mappings carry batched CIGARs and the SAM output is
  // byte-identical to the private-Aligner two-phase path.
  Fixture f;
  core::AlignerOptions opts;
  opts.traceback = true;
  core::Aligner aligner(opts);
  auto want =
      f.mapper->map_batch(f.read_seqs, aligner.batch_extender(), aligner.traced_extender());

  core::ServiceOptions svc;
  svc.batch_pairs = 16;
  core::AlignService service(opts, svc);
  auto got = f.mapper->map_session(f.read_seqs, service);

  expect_same_mappings(got, want);
  EXPECT_EQ(f.sam_of(got), f.sam_of(want));
  std::size_t traced = 0, mapped = 0;
  for (const auto& m : got) {
    traced += m.has_traceback;
    mapped += m.mapped;
  }
  EXPECT_EQ(traced, mapped);
  EXPECT_GT(mapped, f.reads.size() / 2);
}

TEST(ServiceMapping, ConcurrentTenantsDoNotPerturbEachOthersMappings) {
  // Three mapper clients on three threads, one shared service, different
  // priorities and weights: every client's mappings (and SAM bytes) equal
  // its standalone run — multi-tenancy is invisible in the results.
  core::AlignerOptions opts;
  opts.traceback = true;
  core::ServiceOptions svc;
  svc.batch_pairs = 16;
  core::AlignService service(opts, svc);

  constexpr int kClients = 3;
  std::vector<std::unique_ptr<Fixture>> fixtures;
  std::vector<std::vector<ReadMapping>> want(kClients);
  core::Aligner aligner(opts);
  for (int c = 0; c < kClients; ++c) {
    fixtures.push_back(
        std::make_unique<Fixture>(100 + static_cast<std::uint64_t>(c), 30));
    want[static_cast<std::size_t>(c)] = fixtures.back()->mapper->map_batch(
        fixtures.back()->read_seqs, aligner.batch_extender(), aligner.traced_extender());
  }

  std::vector<std::vector<ReadMapping>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      core::SessionOptions sopts;
      sopts.weight = 1.0 + c;
      sopts.priority = c % 2;
      got[static_cast<std::size_t>(c)] = fixtures[static_cast<std::size_t>(c)]
                                             ->mapper->map_session(
                                                 fixtures[static_cast<std::size_t>(c)]
                                                     ->read_seqs,
                                                 service, sopts);
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    expect_same_mappings(got[static_cast<std::size_t>(c)],
                         want[static_cast<std::size_t>(c)]);
    EXPECT_EQ(fixtures[static_cast<std::size_t>(c)]->sam_of(
                  got[static_cast<std::size_t>(c)]),
              fixtures[static_cast<std::size_t>(c)]->sam_of(
                  want[static_cast<std::size_t>(c)]));
  }
  EXPECT_EQ(service.stats().sessions, 2u * kClients);  // extend + trace per client
}

}  // namespace
}  // namespace saloba::seedext
