// seedext::SharedIndex coverage: on-disk round trips (mmap load bit-identical
// to the in-memory build), malformed-file rejection, the in-process registry
// (dedup, stats, weak lifetime), reference sharding (merged lookups and seeds
// bit-identical to the monolithic index, weighted-LPT lane placement), and
// end-to-end SAM byte-identity through ReadMapper for the mmap-backed and
// sharded seeding paths.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aligner.hpp"
#include "seedext/pipeline.hpp"
#include "seedext/sam_output.hpp"
#include "seedext/seeding.hpp"
#include "seedext/shared_index.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "seq/sam.hpp"
#include "../support/test_support.hpp"
#include "util/rng.hpp"

namespace saloba::seedext {
namespace {

namespace fs = std::filesystem;

/// A unique path under the test temp dir (files are cleaned up by gtest).
std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) /
          (std::string("saloba_index_") + name + ".idx"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fuzz genome with embedded N runs (unindexable stretches) so round trips
/// cover keys that vanish near shard/window boundaries.
std::vector<seq::BaseCode> fuzz_genome(std::uint64_t seed, std::size_t len) {
  util::Xoshiro256 rng(seed);
  auto g = testing::random_seq_with_n(rng, len, 0.01);
  // A couple of contiguous N runs, including one at the very start.
  for (std::size_t i = 0; i < std::min<std::size_t>(7, len); ++i) g[i] = seq::kBaseN;
  if (len > 200) {
    for (std::size_t i = len / 2; i < len / 2 + 40; ++i) g[i] = seq::kBaseN;
  }
  return g;
}

void expect_same_kmer_arrays(const KmerIndex& a, const KmerIndex& b) {
  ASSERT_EQ(a.k(), b.k());
  ASSERT_EQ(a.keys().size(), b.keys().size());
  ASSERT_EQ(a.offsets().size(), b.offsets().size());
  ASSERT_EQ(a.entries().size(), b.entries().size());
  EXPECT_TRUE(std::equal(a.keys().begin(), a.keys().end(), b.keys().begin()));
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(), b.offsets().begin()));
  EXPECT_TRUE(std::equal(a.entries().begin(), a.entries().end(), b.entries().begin()));
}

TEST(SharedIndexRoundTrip, KmerBitIdenticalAcrossKBoundaries) {
  // k-range boundaries (kMinK, a typical k, kMaxK) on fuzzed genomes with
  // N runs: the mmap-loaded arrays must equal the built ones verbatim, and
  // so must every lookup and seed list.
  for (int k : {KmerIndex::kMinK, 16, KmerIndex::kMaxK}) {
    auto genome = fuzz_genome(11 + static_cast<std::uint64_t>(k), 20000);
    IndexOptions options{k, /*kmer=*/true, /*fm=*/false};
    auto built = SharedIndex::build(genome, options);
    std::string path = temp_path("roundtrip_k" + std::to_string(k));
    write_shared_index(path, genome, k, &built->kmer(), nullptr);

    auto loaded = SharedIndex::load(path, genome, options);
    EXPECT_TRUE(loaded->mmap_backed());
    EXPECT_FALSE(built->mmap_backed());
    EXPECT_EQ(loaded->genome_bases(), genome.size());
    EXPECT_EQ(loaded->genome_checksum(), built->genome_checksum());
    expect_same_kmer_arrays(built->kmer(), loaded->kmer());

    util::Xoshiro256 rng(99);
    SeedingParams params;
    params.min_seed_len = k;
    for (int trial = 0; trial < 50; ++trial) {
      std::size_t pos = rng.below(genome.size() - static_cast<std::size_t>(k));
      std::span<const seq::BaseCode> kmer(genome.data() + pos, static_cast<std::size_t>(k));
      auto a = built->kmer().lookup(kmer);
      auto b = loaded->kmer().lookup(kmer);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
    for (int trial = 0; trial < 10; ++trial) {
      std::size_t pos = rng.below(genome.size() - 120);
      std::vector<seq::BaseCode> read(genome.begin() + static_cast<std::ptrdiff_t>(pos),
                                      genome.begin() + static_cast<std::ptrdiff_t>(pos + 120));
      read = testing::mutate(rng, read, 0.02);
      EXPECT_EQ(find_seeds(built->kmer(), genome, read, params),
                find_seeds(loaded->kmer(), genome, read, params));
    }
  }
}

TEST(SharedIndexRoundTrip, FmSectionBitIdentical) {
  auto genome = fuzz_genome(23, 9000);
  IndexOptions options{16, /*kmer=*/false, /*fm=*/true};
  auto built = SharedIndex::build(genome, options);
  std::string path = temp_path("roundtrip_fm");
  save_shared_index(path, genome, options);

  auto loaded = SharedIndex::load(path, genome, options);
  ASSERT_TRUE(loaded->has_fm());
  EXPECT_FALSE(loaded->has_kmer());
  const FmIndex& a = built->fm();
  const FmIndex& b = loaded->fm();
  ASSERT_EQ(a.bwt().size(), b.bwt().size());
  EXPECT_TRUE(std::equal(a.bwt().begin(), a.bwt().end(), b.bwt().begin()));
  EXPECT_EQ(a.primary(), b.primary());
  ASSERT_EQ(a.suffix_array().size(), b.suffix_array().size());
  EXPECT_TRUE(std::equal(a.suffix_array().begin(), a.suffix_array().end(),
                         b.suffix_array().begin()));

  util::Xoshiro256 rng(5);
  SeedingParams params;
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t len = 20 + rng.below(60);
    std::size_t pos = rng.below(genome.size() - len);
    std::span<const seq::BaseCode> pattern(genome.data() + pos, len);
    EXPECT_EQ(a.count(pattern), b.count(pattern));
    EXPECT_EQ(a.locate(pattern), b.locate(pattern));
    std::vector<seq::BaseCode> read(pattern.begin(), pattern.end());
    EXPECT_EQ(find_seeds_fm(a, read, params), find_seeds_fm(b, read, params));
  }
}

TEST(SharedIndexRoundTrip, BothSectionsInOneFile) {
  auto genome = fuzz_genome(31, 6000);
  IndexOptions both{12, /*kmer=*/true, /*fm=*/true};
  std::string path = temp_path("roundtrip_both");
  save_shared_index(path, genome, both);
  auto loaded = SharedIndex::load(path, genome, both);
  EXPECT_TRUE(loaded->has_kmer());
  EXPECT_TRUE(loaded->has_fm());
  auto built = SharedIndex::build(genome, both);
  expect_same_kmer_arrays(built->kmer(), loaded->kmer());
  // A kmer-only consumer can open the same file too.
  auto kmer_only =
      SharedIndex::load(path, genome, IndexOptions{12, /*kmer=*/true, /*fm=*/false});
  EXPECT_TRUE(kmer_only->has_kmer());
}

struct RejectionFixture : ::testing::Test {
  std::vector<seq::BaseCode> genome = fuzz_genome(47, 4000);
  IndexOptions options{14, /*kmer=*/true, /*fm=*/false};
  std::string path = temp_path("rejection");

  void SetUp() override { save_shared_index(path, genome, options); }
};

TEST_F(RejectionFixture, RejectsTruncatedFile) {
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 200u);
  spew(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(SharedIndex::load(path, genome, options), IndexFormatError);
  // Shorter than the header entirely.
  spew(path, bytes.substr(0, 40));
  EXPECT_THROW(SharedIndex::load(path, genome, options), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsCorruptedPayloadByte) {
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), sizeof(IndexFileHeader) + 16);
  bytes[sizeof(IndexFileHeader) + 11] ^= 0x40;  // one flipped payload bit
  spew(path, bytes);
  EXPECT_THROW(SharedIndex::load(path, genome, options), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsTrailingGarbage) {
  std::string bytes = slurp(path);
  bytes += std::string(16, '\x7f');
  spew(path, bytes);
  EXPECT_THROW(SharedIndex::load(path, genome, options), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsWrongMagic) {
  std::string bytes = slurp(path);
  bytes[0] = 'X';
  spew(path, bytes);
  EXPECT_THROW(SharedIndex::load(path, genome, options), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsWrongVersion) {
  std::string bytes = slurp(path);
  bytes[8] = static_cast<char>(kIndexFormatVersion + 1);  // header version field
  spew(path, bytes);
  EXPECT_THROW(SharedIndex::load(path, genome, options), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsDifferentGenome) {
  util::Xoshiro256 rng(3);
  auto other = testing::mutate(rng, genome, 0.01);
  EXPECT_THROW(SharedIndex::load(path, other, options), IndexFormatError);
  // Same content, different length.
  auto shorter = genome;
  shorter.pop_back();
  EXPECT_THROW(SharedIndex::load(path, shorter, options), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsMissingSectionAndWrongK) {
  IndexOptions wants_fm{options.k, /*kmer=*/true, /*fm=*/true};
  EXPECT_THROW(SharedIndex::load(path, genome, wants_fm), IndexFormatError);
  IndexOptions wrong_k{options.k + 1, /*kmer=*/true, /*fm=*/false};
  EXPECT_THROW(SharedIndex::load(path, genome, wrong_k), IndexFormatError);
}

TEST_F(RejectionFixture, RejectsMissingFile) {
  EXPECT_THROW(SharedIndex::load(temp_path("never_written"), genome, options),
               IndexFormatError);
}

TEST(SharedIndexRegistry, DeduplicatesLiveInstancesAndRebuildsAfterExpiry) {
  auto& reg = IndexRegistry::instance();
  reg.reset_stats();
  auto genome = fuzz_genome(61, 5000);
  IndexOptions options{16, true, false};

  auto a = reg.acquire_memory(genome, options);
  auto b = reg.acquire_memory(genome, options);
  EXPECT_EQ(a.get(), b.get());  // one physical index, two handles
  EXPECT_EQ(reg.stats().builds, 1u);
  EXPECT_EQ(reg.stats().hits, 1u);

  // Different k is a different index.
  auto c = reg.acquire_memory(genome, IndexOptions{18, true, false});
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(reg.stats().builds, 2u);

  // Weak lifetime: dropping every handle frees the index; the next acquire
  // builds anew rather than resurrecting a dead pointer.
  a.reset();
  b.reset();
  auto d = reg.acquire_memory(genome, options);
  EXPECT_EQ(reg.stats().builds, 3u);
  EXPECT_GE(reg.live_entries(), 2u);
}

TEST(SharedIndexRegistry, FileAcquireBuildsOnceThenMapsAndShares) {
  auto& reg = IndexRegistry::instance();
  reg.reset_stats();
  auto genome = fuzz_genome(71, 5000);
  IndexOptions options{16, true, false};
  std::string path = temp_path("registry_file");
  fs::remove(path);

  // Missing file: build + save + load (build-once cold start).
  auto a = reg.acquire_file(path, genome, options);
  EXPECT_TRUE(a->mmap_backed());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(reg.stats().builds, 1u);
  EXPECT_EQ(reg.stats().loads, 1u);

  // Live mapping is shared, not re-mapped.
  auto b = reg.acquire_file(path, genome, options);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(reg.stats().hits, 1u);

  // After every handle dies, the warm path is a pure load — no rebuild.
  a.reset();
  b.reset();
  auto c = reg.acquire_file(path, genome, options);
  EXPECT_TRUE(c->mmap_backed());
  EXPECT_EQ(reg.stats().builds, 1u);
  EXPECT_EQ(reg.stats().loads, 2u);
}

TEST(ShardedIndex, LookupBitIdenticalToMonolithicAcrossShardCounts) {
  auto genome = fuzz_genome(83, 30000);
  const int k = 16;
  KmerIndex mono(genome, k);
  util::Xoshiro256 rng(17);

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                             std::size_t{7}, std::size_t{16}}) {
    IndexShardingOptions options;
    options.shards = shards;
    ShardedKmerIndex sharded(genome, k, options);
    ASSERT_EQ(sharded.shards().size(), shards);
    // Windows tile the genome: owned ranges are disjoint and exhaustive.
    std::size_t covered = 0;
    for (const auto& s : sharded.shards()) {
      EXPECT_EQ(s.begin, covered);
      EXPECT_LE(s.end, s.text_end);
      EXPECT_LE(s.text_end, std::min(genome.size(), s.end + static_cast<std::size_t>(k) - 1));
      covered = s.end;
    }
    EXPECT_EQ(covered, genome.size());

    for (int trial = 0; trial < 200; ++trial) {
      std::size_t pos = rng.below(genome.size() - static_cast<std::size_t>(k));
      std::span<const seq::BaseCode> kmer(genome.data() + pos, static_cast<std::size_t>(k));
      auto want = mono.lookup(kmer);
      auto got = sharded.lookup(kmer);
      ASSERT_EQ(got.size(), want.size()) << shards << " shards, kmer at " << pos;
      EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
    }

    SeedingParams params;
    for (int trial = 0; trial < 10; ++trial) {
      std::size_t pos = rng.below(genome.size() - 150);
      std::vector<seq::BaseCode> read(genome.begin() + static_cast<std::ptrdiff_t>(pos),
                                      genome.begin() + static_cast<std::ptrdiff_t>(pos + 150));
      read = testing::mutate(rng, read, 0.03);
      EXPECT_EQ(find_seeds(mono, genome, read, params),
                find_seeds(sharded, genome, read, params));
    }
  }
}

TEST(ShardedIndex, TinyGenomeAndOverAsking) {
  // More shards than bases: the count clamps, nothing crashes, lookups agree.
  util::Xoshiro256 rng(29);
  auto genome = testing::random_seq(rng, 10);
  const int k = 4;
  KmerIndex mono(genome, k);
  IndexShardingOptions options;
  options.shards = 64;
  ShardedKmerIndex sharded(genome, k, options);
  EXPECT_LE(sharded.shards().size(), genome.size());
  for (std::size_t pos = 0; pos + k <= genome.size(); ++pos) {
    std::span<const seq::BaseCode> kmer(genome.data() + pos, k);
    auto want = mono.lookup(kmer);
    auto got = sharded.lookup(kmer);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
  }
}

TEST(ShardedIndex, WeightedLptPlacementSkewsTowardFastLanes) {
  auto genome = fuzz_genome(97, 40000);
  IndexShardingOptions options;
  options.shards = 8;
  options.lane_weights = {3.0, 1.0};
  ShardedKmerIndex sharded(genome, 16, options);
  auto loads = sharded.lane_loads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_GT(loads[0], 0.0);
  EXPECT_GT(loads[1], 0.0);
  // The 3x lane should carry roughly 3x the window bases (equal shard sizes
  // make LPT land 6/2 of 8 shards).
  EXPECT_GT(loads[0], 2.0 * loads[1]);
  for (const auto& s : sharded.shards()) {
    EXPECT_GE(s.lane, 0);
    EXPECT_LT(s.lane, 2);
  }
}

TEST(ShardedIndex, PersistedShardsRoundTripThroughRegistry) {
  auto& reg = IndexRegistry::instance();
  auto genome = fuzz_genome(101, 20000);
  const int k = 16;
  KmerIndex mono(genome, k);
  IndexShardingOptions options;
  options.shards = 4;
  options.path_prefix = temp_path("shard_prefix");
  for (std::size_t i = 0; i < options.shards; ++i) {
    fs::remove(options.path_prefix + ".shard" + std::to_string(i));
  }

  reg.reset_stats();
  {
    ShardedKmerIndex cold(genome, k, options);  // builds + saves every shard
    EXPECT_EQ(reg.stats().builds, options.shards);
    for (std::size_t i = 0; i < options.shards; ++i) {
      EXPECT_TRUE(fs::exists(options.path_prefix + ".shard" + std::to_string(i)));
    }
    for (const auto& s : cold.shards()) EXPECT_TRUE(s.index->mmap_backed());
  }  // drop the cold handles so the warm start exercises the load path

  // Warm start: all shards load from their files, no rebuild anywhere.
  reg.reset_stats();
  ShardedKmerIndex warm(genome, k, options);
  EXPECT_EQ(reg.stats().builds, 0u);
  EXPECT_EQ(reg.stats().loads, options.shards);

  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::size_t pos = rng.below(genome.size() - static_cast<std::size_t>(k));
    std::span<const seq::BaseCode> kmer(genome.data() + pos, static_cast<std::size_t>(k));
    auto want = mono.lookup(kmer);
    auto got = warm.lookup(kmer);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
  }
}

/// End-to-end fixture: one genome, simulated reads, and the plain in-memory
/// mapper whose SAM output is the oracle for every shared-index path.
struct EndToEnd : ::testing::Test {
  std::vector<seq::BaseCode> genome;
  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;

  void SetUp() override {
    seq::GenomeParams gp;
    gp.length = 60000;
    gp.n_fraction = 0.001;
    gp.repeat_fraction = 0.05;
    genome = seq::generate_genome(gp);
    seq::ReadProfile profile = seq::ReadProfile::equal_length(150);
    profile.mutation_rate = 0.01;
    seq::ReadSimulator sim(genome, profile, 13);
    for (auto& r : sim.simulate(40)) reads.push_back(r.read);
    for (const auto& r : reads) read_seqs.push_back(r.bases);
  }

  std::string sam_of(const ReadMapper& mapper) const {
    core::Aligner aligner{core::AlignerOptions{}};
    auto mappings = mapper.map_batch(read_seqs, aligner.batch_extender());
    std::ostringstream out;
    seq::SamHeader h;
    h.reference_name = "chrT";
    h.reference_length = genome.size();
    seq::SamWriter writer(out, h);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      writer.write(to_sam_record(mapper, reads[i], mappings[i], "chrT"));
    }
    return out.str();
  }
};

TEST_F(EndToEnd, MmapBackedMapperEmitsIdenticalSamBytes) {
  ReadMapper plain(genome, MapperParams{});
  std::string want = sam_of(plain);
  EXPECT_NE(want.find("chrT"), std::string::npos);

  MapperParams mmap_params;
  mmap_params.index_path = temp_path("e2e_mmap");
  fs::remove(mmap_params.index_path);
  ReadMapper cold(genome, mmap_params);  // builds + saves + maps
  EXPECT_EQ(sam_of(cold), want);

  ReadMapper warm(genome, mmap_params);  // pure mmap load
  EXPECT_EQ(sam_of(warm), want);
}

TEST_F(EndToEnd, ShardedMapperEmitsIdenticalSamBytes) {
  ReadMapper plain(genome, MapperParams{});
  std::string want = sam_of(plain);

  MapperParams sharded;
  sharded.index_shards = 3;
  sharded.index_lane_weights = {2.0, 1.0};
  EXPECT_EQ(sam_of(ReadMapper(genome, sharded)), want);

  // Sharded + persisted sub-indices (the mmap'd sharded cold/warm start).
  sharded.index_path = temp_path("e2e_sharded");
  for (std::size_t i = 0; i < sharded.index_shards; ++i) {
    fs::remove(sharded.index_path + ".shard" + std::to_string(i));
  }
  EXPECT_EQ(sam_of(ReadMapper(genome, sharded)), want);  // cold
  EXPECT_EQ(sam_of(ReadMapper(genome, sharded)), want);  // warm
}

TEST_F(EndToEnd, PipelineBuildsSharedIndexExactlyOnce) {
  // The satellite regression: two mappers over one reference must share one
  // physical index — one build, every later acquisition a registry hit.
  auto& reg = IndexRegistry::instance();
  reg.reset_stats();
  ReadMapper first(genome, MapperParams{});
  ReadMapper second(genome, MapperParams{});
  EXPECT_EQ(reg.stats().builds, 1u);
  EXPECT_GE(reg.stats().hits, 1u);
  EXPECT_EQ(sam_of(first), sam_of(second));
}

}  // namespace
}  // namespace saloba::seedext
