#include "seedext/suffix_array.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {
namespace {

void expect_valid_sa(const std::vector<seq::BaseCode>& text) {
  auto sa = build_suffix_array(text);
  auto naive = build_suffix_array_naive(text);
  EXPECT_EQ(sa, naive);
}

TEST(SuffixArray, KnownSmallCase) {
  // "banana"-style over bases: use GATTACA.
  auto text = seq::encode_string("GATTACA");
  auto sa = build_suffix_array(text);
  auto naive = build_suffix_array_naive(text);
  EXPECT_EQ(sa, naive);
}

TEST(SuffixArray, Empty) { EXPECT_TRUE(build_suffix_array({}).empty()); }

TEST(SuffixArray, SingleCharacter) {
  auto text = seq::encode_string("A");
  auto sa = build_suffix_array(text);
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0);
}

TEST(SuffixArray, AllSameCharacter) {
  std::vector<seq::BaseCode> text(50, seq::kBaseA);
  auto sa = build_suffix_array(text);
  // Shortest suffix sorts first when all chars equal.
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], static_cast<std::int32_t>(49 - i));
  }
}

TEST(SuffixArray, TandemRepeats) {
  expect_valid_sa(seq::encode_string("ACGTACGTACGTACGT"));
  expect_valid_sa(seq::encode_string("AAACCCAAACCCAAACCC"));
}

TEST(SuffixArray, WithNBases) {
  expect_valid_sa(seq::encode_string("ACGNNNACGTNACG"));
}

class SuffixArrayRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuffixArrayRandom, MatchesNaiveSort) {
  util::Xoshiro256 rng(GetParam() * 7 + 1);
  auto text = saloba::testing::random_seq(rng, GetParam());
  expect_valid_sa(text);
}

TEST_P(SuffixArrayRandom, IsPermutationAndSorted) {
  util::Xoshiro256 rng(GetParam() * 13 + 5);
  auto text = saloba::testing::random_seq_with_n(rng, GetParam(), 0.1);
  auto sa = build_suffix_array(text);
  ASSERT_EQ(sa.size(), text.size());
  std::set<std::int32_t> seen(sa.begin(), sa.end());
  EXPECT_EQ(seen.size(), sa.size());  // permutation
  for (std::size_t i = 1; i < sa.size(); ++i) {
    std::span<const seq::BaseCode> a(text.data() + sa[i - 1],
                                     text.size() - static_cast<std::size_t>(sa[i - 1]));
    std::span<const seq::BaseCode> b(text.data() + sa[i],
                                     text.size() - static_cast<std::size_t>(sa[i]));
    EXPECT_TRUE(std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end()))
        << "order violated at rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, SuffixArrayRandom,
                         ::testing::Values(2, 3, 10, 33, 100, 257, 1000, 4096));

TEST(SuffixArray, LargeInputCompletes) {
  util::Xoshiro256 rng(77);
  auto text = saloba::testing::random_seq(rng, 1 << 18);
  auto sa = build_suffix_array(text);
  EXPECT_EQ(sa.size(), text.size());
  // Spot-check ordering at a few ranks.
  for (std::size_t i : {1000u, 100000u, 200000u}) {
    std::span<const seq::BaseCode> a(text.data() + sa[i - 1],
                                     text.size() - static_cast<std::size_t>(sa[i - 1]));
    std::span<const seq::BaseCode> b(text.data() + sa[i],
                                     text.size() - static_cast<std::size_t>(sa[i]));
    EXPECT_TRUE(std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end()));
  }
}

}  // namespace
}  // namespace saloba::seedext
