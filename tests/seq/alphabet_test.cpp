#include "seq/alphabet.hpp"

#include <gtest/gtest.h>

namespace saloba::seq {
namespace {

TEST(Alphabet, EncodeCanonicalBases) {
  EXPECT_EQ(encode_base('A'), kBaseA);
  EXPECT_EQ(encode_base('c'), kBaseC);
  EXPECT_EQ(encode_base('G'), kBaseG);
  EXPECT_EQ(encode_base('t'), kBaseT);
  EXPECT_EQ(encode_base('N'), kBaseN);
}

TEST(Alphabet, UracilMapsToT) {
  EXPECT_EQ(encode_base('U'), kBaseT);
  EXPECT_EQ(encode_base('u'), kBaseT);
}

TEST(Alphabet, UnknownCharsMapToN) {
  for (char c : {'X', '-', '*', '1', ' '}) EXPECT_EQ(encode_base(c), kBaseN);
}

TEST(Alphabet, DecodeRoundTrip) {
  for (BaseCode c = 0; c < kAlphabetSize; ++c) EXPECT_EQ(encode_base(decode_base(c)), c);
}

TEST(Alphabet, ComplementIsInvolutionOnACGT) {
  for (BaseCode c = 0; c < 4; ++c) {
    EXPECT_NE(complement(c), c);
    EXPECT_EQ(complement(complement(c)), c);
  }
  EXPECT_EQ(complement(kBaseN), kBaseN);
}

TEST(Alphabet, ComplementPairs) {
  EXPECT_EQ(complement(kBaseA), kBaseT);
  EXPECT_EQ(complement(kBaseC), kBaseG);
}

TEST(Alphabet, EncodeDecodeString) {
  auto codes = encode_string("ACGTNacgu");
  EXPECT_EQ(decode_string(codes), "ACGTNACGT");
}

TEST(Alphabet, ReverseComplementKnownCase) {
  auto codes = encode_string("AACGT");
  EXPECT_EQ(decode_string(reverse_complement(codes)), "ACGTT");
}

TEST(Alphabet, ReverseComplementIsInvolution) {
  auto codes = encode_string("ACGTACGTNNGATTACA");
  EXPECT_EQ(reverse_complement(reverse_complement(codes)), codes);
}

TEST(Alphabet, ValidBaseChars) {
  EXPECT_TRUE(is_valid_base_char('A'));
  EXPECT_TRUE(is_valid_base_char('n'));
  EXPECT_TRUE(is_valid_base_char('u'));
  EXPECT_FALSE(is_valid_base_char('Z'));
  EXPECT_FALSE(is_valid_base_char('@'));
}

}  // namespace
}  // namespace saloba::seq
