// Chunked FASTA/FASTQ readers: chunk accounting, CRLF tolerance, multi-line
// records across chunk boundaries, truncated-record errors with line
// numbers, and exact round-trips against the non-chunked readers (which are
// now implemented on top of these).
#include "seq/chunk_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "seq/fasta.hpp"

namespace saloba::seq {
namespace {

std::vector<Sequence> drain_chunks(SequenceChunkReader& reader,
                                   std::vector<std::size_t>* chunk_sizes = nullptr) {
  std::vector<Sequence> all;
  SequenceChunk chunk;
  while (reader.next(chunk)) {
    if (chunk_sizes) chunk_sizes->push_back(chunk.size());
    EXPECT_EQ(chunk.first_record, all.size());
    for (auto& s : chunk.records) all.push_back(std::move(s));
  }
  return all;
}

TEST(FastqChunkReader, SplitsStreamIntoBoundedChunks) {
  std::ostringstream input;
  for (int i = 0; i < 7; ++i) {
    input << "@r" << i << "\nACGT\n+\nIIII\n";
  }
  std::istringstream in(input.str());
  FastqChunkReader reader(in, 3);
  std::vector<std::size_t> sizes;
  auto all = drain_chunks(reader, &sizes);
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 1}));
  EXPECT_EQ(reader.chunks_read(), 3u);
  EXPECT_EQ(reader.records_read(), 7u);
  EXPECT_EQ(all[0].name, "r0");
  EXPECT_EQ(all[6].name, "r6");
  SequenceChunk chunk;
  EXPECT_FALSE(reader.next(chunk));  // exhausted stays exhausted
}

TEST(FastqChunkReader, ToleratesCrlfAndBlankLinesBetweenRecords) {
  std::istringstream in("@a\r\nACGT\r\n+\r\nIIII\r\n\r\n@b\r\nTT\r\n+b\r\nJJ\r\n");
  FastqChunkReader reader(in, 10);
  SequenceChunk chunk;
  ASSERT_TRUE(reader.next(chunk));
  ASSERT_EQ(chunk.size(), 2u);
  EXPECT_EQ(chunk.records[0].to_string(), "ACGT");
  EXPECT_EQ(chunk.records[0].quality, "IIII");
  EXPECT_EQ(chunk.records[1].name, "b");
  EXPECT_EQ(chunk.records[1].quality, "JJ");
}

TEST(FastqChunkReader, TruncatedFinalRecordThrowsWithLineNumber) {
  // Record 2 ends after its '+' line: the quality line (line 8) is missing.
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nTTTT\n+\n");
  FastqChunkReader reader(in, 10);
  SequenceChunk chunk;
  try {
    reader.next(chunk);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("missing quality line"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 8"), std::string::npos) << msg;
  }
}

TEST(FastqChunkReader, ChunkBoundaryNeverSplitsARecord) {
  // Chunks are measured in whole records, so any chunk size — including 1,
  // which puts a boundary between every 4-line record — parses the same
  // stream to the same records.
  std::ostringstream input;
  for (int i = 0; i < 5; ++i) {
    input << "@r" << i << "\nACGTACGT\n+\nIIIIIIII\n";
  }
  for (std::size_t chunk_records : {1u, 2u, 3u, 100u}) {
    std::istringstream in(input.str());
    FastqChunkReader reader(in, chunk_records);
    auto all = drain_chunks(reader);
    ASSERT_EQ(all.size(), 5u) << "chunk_records=" << chunk_records;
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)].name, "r" + std::to_string(i));
      EXPECT_EQ(all[static_cast<std::size_t>(i)].to_string(), "ACGTACGT");
    }
  }
}

TEST(FastaChunkReader, MultiLineRecordsReassembleAcrossChunkBoundaries) {
  // A 3-line record right at a chunk-size-1 boundary: the reader must hold
  // the pending '>' header between next() calls and never split the bases.
  std::istringstream in(">a desc\nACGT\nACGT\nAC\n>b\nTTTT\n>c\nGG\nGG\n");
  FastaChunkReader reader(in, 1);
  std::vector<std::size_t> sizes;
  auto all = drain_chunks(reader, &sizes);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1, 1}));
  EXPECT_EQ(all[0].name, "a");  // truncated at whitespace
  EXPECT_EQ(all[0].to_string(), "ACGTACGTAC");
  EXPECT_EQ(all[1].to_string(), "TTTT");
  EXPECT_EQ(all[2].to_string(), "GGGG");
}

TEST(FastaChunkReader, RejectsDataBeforeFirstHeaderWithLineNumber) {
  std::istringstream in("\nACGT\n>late\nAC\n");
  FastaChunkReader reader(in, 4);
  SequenceChunk chunk;
  try {
    reader.next(chunk);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("before first '>'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
}

TEST(FastaChunkReader, CrlfInput) {
  std::istringstream in(">a\r\nAC\r\nGT\r\n");
  FastaChunkReader reader(in, 4);
  SequenceChunk chunk;
  ASSERT_TRUE(reader.next(chunk));
  ASSERT_EQ(chunk.size(), 1u);
  EXPECT_EQ(chunk.records[0].to_string(), "ACGT");
}

TEST(ChunkReaders, RoundTripMatchesNonChunkedReaders) {
  // Write a mixed-length FASTQ + multi-line FASTA, then compare chunked
  // reading (awkward chunk size) field-for-field with read_fastq/read_fasta.
  std::vector<Sequence> seqs(9);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    seqs[i].name = "s" + std::to_string(i);
    seqs[i].bases = encode_string(std::string(10 + 37 * i, "ACGT"[i % 4]));
    seqs[i].quality = std::string(seqs[i].bases.size(), 'F');
  }

  std::ostringstream fq;
  write_fastq(fq, seqs);
  std::istringstream fq_plain(fq.str()), fq_chunked(fq.str());
  auto expected_fq = read_fastq(fq_plain);
  FastqChunkReader fq_reader(fq_chunked, 4);
  auto got_fq = drain_chunks(fq_reader);
  ASSERT_EQ(got_fq.size(), expected_fq.size());
  for (std::size_t i = 0; i < expected_fq.size(); ++i) {
    EXPECT_EQ(got_fq[i].name, expected_fq[i].name);
    EXPECT_EQ(got_fq[i].bases, expected_fq[i].bases);
    EXPECT_EQ(got_fq[i].quality, expected_fq[i].quality);
  }

  std::ostringstream fa;
  write_fasta(fa, seqs, 25);  // forces multi-line records
  std::istringstream fa_plain(fa.str()), fa_chunked(fa.str());
  auto expected_fa = read_fasta(fa_plain);
  FastaChunkReader fa_reader(fa_chunked, 2);
  auto got_fa = drain_chunks(fa_reader);
  ASSERT_EQ(got_fa.size(), expected_fa.size());
  for (std::size_t i = 0; i < expected_fa.size(); ++i) {
    EXPECT_EQ(got_fa[i].name, expected_fa[i].name);
    EXPECT_EQ(got_fa[i].bases, expected_fa[i].bases);
  }
}

TEST(ChunkReaders, EmptyStreamYieldsNoChunks) {
  std::istringstream in("");
  FastqChunkReader fastq(in, 8);
  SequenceChunk chunk;
  EXPECT_FALSE(fastq.next(chunk));
  EXPECT_EQ(fastq.records_read(), 0u);

  std::istringstream in2("\n\n");
  FastaChunkReader fasta(in2, 8);
  EXPECT_FALSE(fasta.next(chunk));
}

}  // namespace
}  // namespace saloba::seq
