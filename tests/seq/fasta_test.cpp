#include "seq/fasta.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace saloba::seq {
namespace {

TEST(Fasta, ParsesMultiRecordInput) {
  std::istringstream in(">seq1 description here\nACGT\nACGT\n>seq2\nTTTT\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].name, "seq1");  // truncated at whitespace
  EXPECT_EQ(seqs[0].to_string(), "ACGTACGT");
  EXPECT_EQ(seqs[1].name, "seq2");
  EXPECT_EQ(seqs[1].to_string(), "TTTT");
}

TEST(Fasta, ToleratesCrlfAndBlankLines) {
  std::istringstream in(">a\r\nAC\r\n\r\nGT\r\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].to_string(), "ACGT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>late\nAC\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> seqs(2);
  seqs[0].name = "alpha";
  seqs[0].bases = encode_string(std::string(150, 'A') + std::string(37, 'G'));
  seqs[1].name = "beta";
  seqs[1].bases = encode_string("ACGTN");
  std::ostringstream out;
  write_fasta(out, seqs, 70);
  std::istringstream in(out.str());
  auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].bases, seqs[0].bases);
  EXPECT_EQ(back[1].bases, seqs[1].bases);
}

TEST(Fasta, LineWidthRespected) {
  std::vector<Sequence> seqs(1);
  seqs[0].name = "x";
  seqs[0].bases = encode_string(std::string(100, 'C'));
  std::ostringstream out;
  write_fasta(out, seqs, 40);
  std::istringstream check(out.str());
  std::string line;
  std::getline(check, line);  // header
  std::getline(check, line);
  EXPECT_EQ(line.size(), 40u);
}

TEST(Fastq, ParsesRecords) {
  std::istringstream in("@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+r2\nJJ\n");
  auto seqs = read_fastq(in);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].name, "r1");
  EXPECT_EQ(seqs[0].to_string(), "ACGT");
  EXPECT_EQ(seqs[0].quality, "IIII");
  EXPECT_EQ(seqs[1].quality, "JJ");
}

TEST(Fastq, RejectsLengthMismatch) {
  std::istringstream in("@r\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(in), std::runtime_error);
}

TEST(Fastq, RejectsMissingPlus) {
  std::istringstream in("@r\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(in), std::runtime_error);
}

TEST(Fastq, WriteReadRoundTrip) {
  std::vector<Sequence> seqs(1);
  seqs[0].name = "q";
  seqs[0].bases = encode_string("GATTACA");
  seqs[0].quality = "ABCDEFG";
  std::ostringstream out;
  write_fastq(out, seqs);
  std::istringstream in(out.str());
  auto back = read_fastq(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].bases, seqs[0].bases);
  EXPECT_EQ(back[0].quality, seqs[0].quality);
}

TEST(Fastq, SynthesisesQualityWhenMissing) {
  std::vector<Sequence> seqs(1);
  seqs[0].name = "q";
  seqs[0].bases = encode_string("ACG");
  std::ostringstream out;
  write_fastq(out, seqs);
  EXPECT_NE(out.str().find("III"), std::string::npos);
}

TEST(FastaFile, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa"), std::runtime_error);
}

}  // namespace
}  // namespace saloba::seq
