#include "seq/packed_seq.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"

namespace saloba::seq {
namespace {

class PackingRoundTrip : public ::testing::TestWithParam<Packing> {};

TEST_P(PackingRoundTrip, RandomSequencesSurvive) {
  util::Xoshiro256 rng(5);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 31u, 32u, 33u, 250u}) {
    auto codes = saloba::testing::random_seq(rng, len);
    PackedSeq packed(codes, GetParam());
    ASSERT_EQ(packed.size(), len);
    EXPECT_EQ(packed.unpack(), codes);
  }
}

TEST_P(PackingRoundTrip, BaseAccessorMatchesUnpack) {
  util::Xoshiro256 rng(6);
  auto codes = saloba::testing::random_seq(rng, 100);
  PackedSeq packed(codes, GetParam());
  for (std::size_t i = 0; i < codes.size(); ++i) EXPECT_EQ(packed.base(i), codes[i]);
}

INSTANTIATE_TEST_SUITE_P(AllPackings, PackingRoundTrip,
                         ::testing::Values(Packing::k2Bit, Packing::k4Bit, Packing::k8Bit));

TEST(PackedSeq, BasesPerWord) {
  EXPECT_EQ(bases_per_word(Packing::k2Bit), 16);
  EXPECT_EQ(bases_per_word(Packing::k4Bit), 8);
  EXPECT_EQ(bases_per_word(Packing::k8Bit), 4);
}

TEST(PackedSeq, FourBitWordLayoutMatchesPaper) {
  // Eight bases exactly fill one 32-bit register word (paper Sec. II-B).
  auto codes = encode_string("ACGTACGT");
  PackedSeq packed(codes, Packing::k4Bit);
  EXPECT_EQ(packed.words(), 1u);
  // First base occupies the least-significant nibble.
  EXPECT_EQ(packed.word(0) & 0xF, kBaseA);
  EXPECT_EQ((packed.word(0) >> 4) & 0xF, kBaseC);
}

TEST(PackedSeq, TwoBitSubstitutesN) {
  auto codes = encode_string("ANGN");
  PackedSeq packed(codes, Packing::k2Bit, kBaseC);
  auto unpacked = packed.unpack();
  EXPECT_EQ(unpacked[0], kBaseA);
  EXPECT_EQ(unpacked[1], kBaseC);  // N -> substitute
  EXPECT_EQ(unpacked[2], kBaseG);
  EXPECT_EQ(unpacked[3], kBaseC);
}

TEST(PackedSeq, ByteSizeTracksWords) {
  auto codes = encode_string("ACGTACGTA");  // 9 bases -> 2 words at 4-bit
  PackedSeq packed(codes, Packing::k4Bit);
  EXPECT_EQ(packed.words(), 2u);
  EXPECT_EQ(packed.byte_size(), 8u);
}

TEST(PackedBatch, SequencesStartWordAligned) {
  util::Xoshiro256 rng(7);
  std::vector<std::vector<BaseCode>> seqs;
  for (std::size_t len : {5u, 8u, 13u}) seqs.push_back(saloba::testing::random_seq(rng, len));
  PackedBatch batch = pack_batch(seqs, Packing::k4Bit);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.word_offset[0], 0u);
  EXPECT_EQ(batch.word_offset[1], 1u);  // 5 bases -> 1 word
  EXPECT_EQ(batch.word_offset[2], 2u);  // 8 bases -> 1 word
  for (std::size_t s = 0; s < seqs.size(); ++s) {
    ASSERT_EQ(batch.length[s], seqs[s].size());
    for (std::size_t i = 0; i < seqs[s].size(); ++i) EXPECT_EQ(batch.base(s, i), seqs[s][i]);
  }
}

TEST(PackedBatch, WordCountPerSequence) {
  std::vector<std::vector<BaseCode>> seqs{encode_string("ACGTACGTA")};
  PackedBatch batch = pack_batch(seqs, Packing::k4Bit);
  EXPECT_EQ(batch.word_count(0), 2u);
}

TEST(PackedSeq, ExtractBaseFreeFunction) {
  auto codes = encode_string("TGCA");
  PackedSeq packed(codes, Packing::k8Bit);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(extract_base(packed.data(), i, Packing::k8Bit), codes[i]);
  }
}

}  // namespace
}  // namespace saloba::seq
