#include "seq/random_genome.hpp"

#include <set>

#include <gtest/gtest.h>

namespace saloba::seq {
namespace {

GenomeParams small_params() {
  GenomeParams p;
  p.length = 100000;
  return p;
}

TEST(RandomGenome, ProducesRequestedLength) {
  auto g = generate_genome(small_params());
  EXPECT_EQ(g.size(), 100000u);
}

TEST(RandomGenome, DeterministicInSeed) {
  auto a = generate_genome(small_params());
  auto b = generate_genome(small_params());
  EXPECT_EQ(a, b);
  GenomeParams other = small_params();
  other.seed = 1234;
  EXPECT_NE(generate_genome(other), a);
}

TEST(RandomGenome, GcContentNearTarget) {
  GenomeParams p = small_params();
  p.repeat_fraction = 0.0;
  p.n_fraction = 0.0;
  auto g = generate_genome(p);
  std::size_t gc = 0;
  for (auto b : g) gc += (b == kBaseG || b == kBaseC);
  double frac = static_cast<double>(gc) / static_cast<double>(g.size());
  EXPECT_NEAR(frac, p.gc_content, 0.02);
}

TEST(RandomGenome, ContainsNRuns) {
  GenomeParams p = small_params();
  p.n_fraction = 0.01;
  auto g = generate_genome(p);
  std::size_t ns = 0;
  for (auto b : g) ns += (b == kBaseN);
  EXPECT_GT(ns, g.size() / 500);
}

TEST(RandomGenome, ZeroNFractionHasNoN) {
  GenomeParams p = small_params();
  p.n_fraction = 0.0;
  auto g = generate_genome(p);
  for (auto b : g) ASSERT_NE(b, kBaseN);
}

TEST(RandomGenome, RepeatsRaiseDuplicateKmerRate) {
  auto count_duplicate_32mers = [](const std::vector<BaseCode>& g) {
    std::set<std::string> seen;
    std::size_t dups = 0;
    for (std::size_t i = 0; i + 32 <= g.size(); i += 32) {
      std::string key(g.begin() + static_cast<std::ptrdiff_t>(i),
                      g.begin() + static_cast<std::ptrdiff_t>(i + 32));
      if (!seen.insert(key).second) ++dups;
    }
    return dups;
  };
  GenomeParams with = small_params();
  with.repeat_fraction = 0.3;
  with.n_fraction = 0.0;
  GenomeParams without = small_params();
  without.repeat_fraction = 0.0;
  without.n_fraction = 0.0;
  EXPECT_GT(count_duplicate_32mers(generate_genome(with)),
            count_duplicate_32mers(generate_genome(without)));
}

TEST(RandomGenomeDeath, RejectsTinyGenome) {
  GenomeParams p;
  p.length = 10;
  EXPECT_DEATH(generate_genome(p), "at least 1 kbp");
}

}  // namespace
}  // namespace saloba::seq
