#include "seq/read_simulator.hpp"

#include "align/sw_reference.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "seq/random_genome.hpp"
#include "util/stats.hpp"

namespace saloba::seq {
namespace {

std::vector<BaseCode> test_genome() {
  GenomeParams p;
  p.length = 200000;
  p.n_fraction = 0.0;
  return generate_genome(p);
}

TEST(ReadSimulator, EqualLengthProfileExact) {
  ReadSimulator sim(test_genome(), ReadProfile::equal_length(128), 1);
  for (const auto& r : sim.simulate(50)) {
    EXPECT_EQ(r.true_len, 128u);
  }
}

TEST(ReadSimulator, IlluminaProfileFixedLength) {
  ReadSimulator sim(test_genome(), ReadProfile::illumina_250bp(), 1);
  auto reads = sim.simulate(100);
  for (const auto& r : reads) {
    EXPECT_EQ(r.true_len, 250u);
    // Low error rate: read length stays near 250.
    EXPECT_NEAR(static_cast<double>(r.read.size()), 250.0, 25.0);
  }
}

TEST(ReadSimulator, PacbioProfileVariableLengths) {
  ReadSimulator sim(test_genome(), ReadProfile::pacbio_2kbp(), 1);
  auto reads = sim.simulate(300);
  std::vector<double> lens;
  for (const auto& r : reads) lens.push_back(static_cast<double>(r.true_len));
  // Long-read profile: wide spread (Fig. 2 (c)/(d) shape) around ~2 kbp.
  EXPECT_GT(util::coeff_variation(lens), 0.25);
  EXPECT_GT(util::mean(lens), 1000.0);
  EXPECT_LT(util::mean(lens), 4000.0);
  for (const auto& r : reads) {
    EXPECT_GE(r.true_len, 200u);
    EXPECT_LE(r.true_len, 20000u);
  }
}

TEST(ReadSimulator, ErrorFreeForwardReadsAreExactSubstrings) {
  auto genome = test_genome();
  ReadProfile p = ReadProfile::equal_length(100);
  p.mutation_rate = 0.0;
  p.error_rate = 0.0;
  p.sample_both_strands = false;
  ReadSimulator sim(genome, p, 2);
  for (const auto& r : sim.simulate(20)) {
    ASSERT_EQ(r.read.size(), 100u);
    EXPECT_FALSE(r.reverse_strand);
    std::vector<BaseCode> window(
        genome.begin() + static_cast<std::ptrdiff_t>(r.true_pos),
        genome.begin() + static_cast<std::ptrdiff_t>(r.true_pos + 100));
    EXPECT_EQ(r.read.bases, window);
  }
}

TEST(ReadSimulator, ReverseStrandReadsAreReverseComplements) {
  auto genome = test_genome();
  ReadProfile p = ReadProfile::equal_length(80);
  p.mutation_rate = 0.0;
  p.error_rate = 0.0;
  ReadSimulator sim(genome, p, 3);
  bool saw_reverse = false;
  for (const auto& r : sim.simulate(50)) {
    std::vector<BaseCode> window(
        genome.begin() + static_cast<std::ptrdiff_t>(r.true_pos),
        genome.begin() + static_cast<std::ptrdiff_t>(r.true_pos + r.true_len));
    if (r.reverse_strand) {
      saw_reverse = true;
      EXPECT_EQ(r.read.bases, reverse_complement(window));
    } else {
      EXPECT_EQ(r.read.bases, window);
    }
  }
  EXPECT_TRUE(saw_reverse);
}

TEST(ReadSimulator, DeterministicInSeed) {
  auto genome = test_genome();
  ReadSimulator a(genome, ReadProfile::illumina_250bp(), 99);
  ReadSimulator b(genome, ReadProfile::illumina_250bp(), 99);
  auto ra = a.simulate(10);
  auto rb = b.simulate(10);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].read.bases, rb[i].read.bases);
    EXPECT_EQ(ra[i].true_pos, rb[i].true_pos);
  }
}

TEST(ReadSimulator, HighErrorRateChangesRead) {
  auto genome = test_genome();
  ReadProfile p = ReadProfile::equal_length(500);
  p.error_rate = 0.15;
  p.error_indel_fraction = 0.5;
  p.sample_both_strands = false;
  ReadSimulator sim(genome, p, 4);
  auto r = sim.simulate_one();
  std::vector<BaseCode> window(genome.begin() + static_cast<std::ptrdiff_t>(r.true_pos),
                               genome.begin() + static_cast<std::ptrdiff_t>(r.true_pos + 500));
  EXPECT_NE(r.read.bases, window);
}

TEST(EqualLengthBatch, ShapesAreExact) {
  auto genome = test_genome();
  auto batch = make_equal_length_batch(genome, 256, 10, 0.01, 5);
  ASSERT_EQ(batch.size(), 10u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.queries[i].size(), 256u);
    EXPECT_EQ(batch.refs[i].size(), 256u);
  }
  EXPECT_EQ(batch.total_cells(), 10u * 256 * 256);
}

TEST(EqualLengthBatch, QueriesResembleRefs) {
  // Indels shift positions, so measure similarity via alignment score
  // rather than positional identity: a 1%-divergent query should align to
  // its reference with a near-full-length local score.
  auto genome = test_genome();
  auto batch = make_equal_length_batch(genome, 128, 5, 0.01, 6);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto r = align::smith_waterman(batch.refs[i], batch.queries[i],
                                   align::ScoringScheme{});
    EXPECT_GT(r.score, 90);
  }
}

}  // namespace
}  // namespace saloba::seq
