#include "seq/sam.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace saloba::seq {
namespace {

SamHeader test_header() {
  SamHeader h;
  h.reference_name = "chrT";
  h.reference_length = 12345;
  h.command_line = "saloba test";
  return h;
}

TEST(Sam, HeaderLinesEmitted) {
  std::ostringstream out;
  SamWriter writer(out, test_header());
  std::string text = out.str();
  EXPECT_NE(text.find("@HD\tVN:1.6"), std::string::npos);
  EXPECT_NE(text.find("@SQ\tSN:chrT\tLN:12345"), std::string::npos);
  EXPECT_NE(text.find("@PG\tID:saloba"), std::string::npos);
  EXPECT_NE(text.find("CL:saloba test"), std::string::npos);
}

TEST(Sam, RecordFieldsInOrder) {
  std::ostringstream out;
  SamWriter writer(out, test_header());
  SamRecord r;
  r.qname = "read1";
  r.rname = "chrT";
  r.pos = 42;
  r.mapq = 60;
  r.cigar = "10M";
  r.seq = "ACGTACGTAC";
  r.tags.push_back("AS:i:10");
  writer.write(r);
  EXPECT_NE(out.str().find("read1\t0\tchrT\t42\t60\t10M\t*\t0\t0\tACGTACGTAC\t*\tAS:i:10"),
            std::string::npos);
  EXPECT_EQ(writer.records_written(), 1u);
}

TEST(Sam, UnmappedRecordUsesStars) {
  std::ostringstream out;
  SamWriter writer(out, test_header());
  SamRecord r;
  r.qname = "lost";
  r.flags = SamRecord::kFlagUnmapped;
  r.seq = "ACGT";
  writer.write(r);
  EXPECT_NE(out.str().find("lost\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\t*"), std::string::npos);
}

TEST(Sam, RoundTripThroughReader) {
  std::ostringstream out;
  SamWriter writer(out, test_header());
  SamRecord a;
  a.qname = "r1";
  a.rname = "chrT";
  a.pos = 100;
  a.mapq = 37;
  a.cigar = "5M2I3M";
  a.seq = "ACGTACGTAC";
  a.qual = "IIIIIIIIII";
  a.flags = SamRecord::kFlagReverse;
  a.tags = {"AS:i:7", "NM:i:2"};
  writer.write(a);

  std::istringstream in(out.str());
  auto records = read_sam(in);
  ASSERT_EQ(records.size(), 1u);
  const auto& b = records[0];
  EXPECT_EQ(b.qname, "r1");
  EXPECT_EQ(b.flags, SamRecord::kFlagReverse);
  EXPECT_EQ(b.pos, 100u);
  EXPECT_EQ(b.mapq, 37);
  EXPECT_EQ(b.cigar, "5M2I3M");
  EXPECT_EQ(b.seq, "ACGTACGTAC");
  EXPECT_EQ(b.qual, "IIIIIIIIII");
  ASSERT_EQ(b.tags.size(), 2u);
  EXPECT_EQ(b.tags[0], "AS:i:7");
}

TEST(Sam, ReaderSkipsHeaderAndRejectsGarbage) {
  std::istringstream ok("@HD\tVN:1.6\nr\t0\tc\t1\t0\t4M\t*\t0\t0\tACGT\t*\n");
  EXPECT_EQ(read_sam(ok).size(), 1u);
  std::istringstream bad("r\t0\tc\n");
  EXPECT_THROW(read_sam(bad), std::runtime_error);
}

TEST(SamDeath, EmptyQnameRejected) {
  std::ostringstream out;
  SamWriter writer(out, test_header());
  SamRecord r;
  EXPECT_DEATH(writer.write(r), "QNAME");
}

}  // namespace
}  // namespace saloba::seq
