// Shared helpers for the test suites: deterministic random sequences and
// pair batches.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/alphabet.hpp"
#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace saloba::testing {

/// Random ACGT sequence (no N).
inline std::vector<seq::BaseCode> random_seq(util::Xoshiro256& rng, std::size_t len) {
  std::vector<seq::BaseCode> out(len);
  for (auto& b : out) b = static_cast<seq::BaseCode>(rng.below(4));
  return out;
}

/// Random sequence over the full alphabet, with `n_prob` chance of N.
inline std::vector<seq::BaseCode> random_seq_with_n(util::Xoshiro256& rng, std::size_t len,
                                                    double n_prob = 0.05) {
  std::vector<seq::BaseCode> out(len);
  for (auto& b : out) {
    b = rng.bernoulli(n_prob) ? seq::kBaseN : static_cast<seq::BaseCode>(rng.below(4));
  }
  return out;
}

/// A mutated copy: substitutions only, rate `p`.
inline std::vector<seq::BaseCode> mutate(util::Xoshiro256& rng,
                                         const std::vector<seq::BaseCode>& src, double p) {
  auto out = src;
  for (auto& b : out) {
    if (rng.bernoulli(p)) b = static_cast<seq::BaseCode>(rng.below(4));
  }
  return out;
}

/// Batch of related pairs (query ~ mutated ref) with equal lengths.
inline seq::PairBatch related_batch(std::uint64_t seed, std::size_t pairs, std::size_t qlen,
                                    std::size_t rlen, bool with_n = false) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t p = 0; p < pairs; ++p) {
    auto ref = with_n ? random_seq_with_n(rng, rlen) : random_seq(rng, rlen);
    std::vector<seq::BaseCode> query;
    if (qlen <= rlen) {
      // Overlap the query with part of the reference so alignments score.
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(qlen));
      query = mutate(rng, query, 0.08);
    } else {
      query = with_n ? random_seq_with_n(rng, qlen) : random_seq(rng, qlen);
    }
    batch.add(std::move(query), std::move(ref));
  }
  return batch;
}

/// Batch with wildly varying lengths (workload-imbalance shape).
inline seq::PairBatch imbalanced_batch(std::uint64_t seed, std::size_t pairs,
                                       std::size_t min_len, std::size_t max_len) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t p = 0; p < pairs; ++p) {
    std::size_t qlen = min_len + rng.below(max_len - min_len + 1);
    std::size_t rlen = min_len + rng.below(max_len - min_len + 1);
    batch.add(random_seq(rng, qlen), random_seq(rng, rlen));
  }
  return batch;
}

}  // namespace saloba::testing
