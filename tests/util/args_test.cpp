#include "util/args.hpp"

#include <gtest/gtest.h>

namespace saloba::util {
namespace {

char** make_argv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(Args, ParsesAllTypes) {
  ArgParser p("prog", "test");
  p.add_int("count", "", 1);
  p.add_double("rate", "", 0.5);
  p.add_string("name", "", "x");
  p.add_flag("verbose", "");
  std::vector<std::string> argv{"prog", "--count=7", "--rate", "2.5", "--name=abc",
                                "--verbose"};
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), make_argv(argv)));
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.5);
  EXPECT_EQ(p.get_string("name"), "abc");
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(Args, DefaultsApplyWhenAbsent) {
  ArgParser p("prog", "test");
  p.add_int("n", "", 42);
  p.add_flag("f", "");
  std::vector<std::string> argv{"prog"};
  ASSERT_TRUE(p.parse(1, make_argv(argv)));
  EXPECT_EQ(p.get_int("n"), 42);
  EXPECT_FALSE(p.get_flag("f"));
}

TEST(Args, UnknownFlagFails) {
  ArgParser p("prog", "test");
  std::vector<std::string> argv{"prog", "--bogus"};
  EXPECT_FALSE(p.parse(2, make_argv(argv)));
}

TEST(Args, HelpReturnsFalse) {
  ArgParser p("prog", "test");
  std::vector<std::string> argv{"prog", "--help"};
  EXPECT_FALSE(p.parse(2, make_argv(argv)));
}

TEST(Args, CollectsPositionals) {
  ArgParser p("prog", "test");
  std::vector<std::string> argv{"prog", "one", "two"};
  ASSERT_TRUE(p.parse(3, make_argv(argv)));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "one");
}

TEST(Args, MissingValueFails) {
  ArgParser p("prog", "test");
  p.add_int("n", "", 0);
  std::vector<std::string> argv{"prog", "--n"};
  EXPECT_FALSE(p.parse(2, make_argv(argv)));
}

TEST(Args, UsageListsFlags) {
  ArgParser p("prog", "my description");
  p.add_int("alpha", "the alpha", 3);
  std::string u = p.usage();
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("my description"), std::string::npos);
  EXPECT_NE(u.find("default: 3"), std::string::npos);
}

TEST(ArgsDeath, UndeclaredAccessAborts) {
  ArgParser p("prog", "test");
  EXPECT_DEATH(p.get_int("nope"), "undeclared");
}

}  // namespace
}  // namespace saloba::util
