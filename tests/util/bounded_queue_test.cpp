// BoundedQueue semantics: FIFO order, capacity backpressure, MPMC safety,
// and — the property the streaming pipeline leans on — close() waking every
// blocked producer and consumer so threads always join cleanly.
#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace saloba::util {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushFailsWhenFullTryPopWhenEmpty) {
  BoundedQueue<int> q(1);
  int v = 7;
  EXPECT_TRUE(q.try_push(v));
  int w = 8;
  EXPECT_FALSE(q.try_push(w));
  EXPECT_EQ(w, 8);  // left untouched on failure
  EXPECT_EQ(*q.try_pop(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenStops) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // closed: push fails
  EXPECT_EQ(*q.pop(), 1);   // already-queued items still drain
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained: end of stream
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer) {
  // The shutdown property: a producer blocked on a full queue and a
  // consumer blocked on an empty one must both return promptly on close —
  // no deadlock, clean joins.
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(0));
  std::thread producer([&] { EXPECT_FALSE(full.push(1)); });

  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<long long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        total += *v;
        ++count;
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(BoundedQueue, PopForReturnsQueuedItemImmediately) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(9));
  auto v = q.pop_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(BoundedQueue, PopForTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(2);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(25));
  EXPECT_FALSE(q.closed());  // a timeout is not a shutdown
}

TEST(BoundedQueue, PopForWakesOnCloseWhileWaiting) {
  // The timed wait must not sleep out its full timeout across a shutdown:
  // close() wakes it immediately with the end-of-stream answer.
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop_for(std::chrono::seconds(30)).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, PopForWakesOnPushWhileWaiting) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    auto v = q.pop_for(std::chrono::seconds(30));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.push(5));
  consumer.join();
}

TEST(BoundedQueue, CancelAwarePopReturnsNulloptWhenAlreadyCancelled) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));  // items remain, but cancellation wins
  CancelToken cancel;
  cancel.cancel();
  EXPECT_FALSE(q.pop(cancel).has_value());
  EXPECT_EQ(q.size(), 1u);  // the item was not consumed
}

TEST(BoundedQueue, CancelWakesBlockedPop) {
  BoundedQueue<int> q(1);
  CancelToken cancel;
  std::thread consumer([&] { EXPECT_FALSE(q.pop(cancel).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.cancel();
  consumer.join();
  EXPECT_FALSE(q.closed());  // cancellation interrupted the wait, not the queue
}

TEST(BoundedQueue, CancelWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));  // full: the next push blocks
  CancelToken cancel;
  std::thread producer([&] { EXPECT_FALSE(q.push(1, cancel)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.cancel();
  producer.join();
  EXPECT_EQ(q.size(), 1u);  // the cancelled item was dropped, not queued
}

TEST(BoundedQueue, CancelAwareOpsStillHonourCloseSemantics) {
  // With a token that never fires, the cancel-aware overloads behave
  // exactly like push()/pop(): close-then-drain, then end of stream.
  BoundedQueue<int> q(4);
  CancelToken cancel;
  EXPECT_TRUE(q.push(1, cancel));
  EXPECT_TRUE(q.push(2, cancel));
  q.close();
  EXPECT_FALSE(q.push(3, cancel));
  EXPECT_EQ(*q.pop(cancel), 1);
  EXPECT_EQ(*q.pop(cancel), 2);
  EXPECT_FALSE(q.pop(cancel).has_value());
}

TEST(BoundedQueue, ManyWaitersAllWakeOnOneCancel) {
  // A single token shared by several blocked consumers and producers (the
  // AlignService shutdown shape): one cancel() must wake every waiter.
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  CancelToken cancel;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] { EXPECT_FALSE(q.push(1, cancel)); });
  }
  BoundedQueue<int> empty(1);
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] { EXPECT_FALSE(empty.pop(cancel).has_value()); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.cancel();
  for (auto& t : waiters) t.join();
}

TEST(CancelToken, SubscribeAfterCancelRunsCallbackImmediately) {
  CancelToken cancel;
  cancel.cancel();
  bool ran = false;
  { CancelSubscription sub(cancel, [&] { ran = true; }); }
  EXPECT_TRUE(ran);
}

TEST(CancelToken, UnsubscribedCallbackDoesNotRun) {
  CancelToken cancel;
  bool ran = false;
  { CancelSubscription sub(cancel, [&] { ran = true; }); }  // RAII unsubscribe
  cancel.cancel();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(cancel.cancelled());
}

TEST(CancelToken, CancelIsIdempotentAndRunsEachCallbackOnce) {
  CancelToken cancel;
  int runs = 0;
  CancelSubscription sub(cancel, [&] { ++runs; });
  cancel.cancel();
  cancel.cancel();
  EXPECT_EQ(runs, 1);
}

TEST(BoundedQueue, MoveOnlyPayloads) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(42)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace saloba::util
