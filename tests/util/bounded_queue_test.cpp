// BoundedQueue semantics: FIFO order, capacity backpressure, MPMC safety,
// and — the property the streaming pipeline leans on — close() waking every
// blocked producer and consumer so threads always join cleanly.
#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace saloba::util {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushFailsWhenFullTryPopWhenEmpty) {
  BoundedQueue<int> q(1);
  int v = 7;
  EXPECT_TRUE(q.try_push(v));
  int w = 8;
  EXPECT_FALSE(q.try_push(w));
  EXPECT_EQ(w, 8);  // left untouched on failure
  EXPECT_EQ(*q.try_pop(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenStops) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // closed: push fails
  EXPECT_EQ(*q.pop(), 1);   // already-queued items still drain
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained: end of stream
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer) {
  // The shutdown property: a producer blocked on a full queue and a
  // consumer blocked on an empty one must both return promptly on close —
  // no deadlock, clean joins.
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(0));
  std::thread producer([&] { EXPECT_FALSE(full.push(1)); });

  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<long long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        total += *v;
        ++count;
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(BoundedQueue, MoveOnlyPayloads) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(42)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace saloba::util
