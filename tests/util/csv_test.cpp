#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace saloba::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(Csv, WritesHeaderAndRows) {
  std::string path = ::testing::TempDir() + "saloba_csv_test.csv";
  {
    CsvWriter csv(path, {"len", "time_ms"});
    csv.add_row({"64", "0.5"});
    csv.add_row({"128", "1.0"});
  }
  EXPECT_EQ(slurp(path), "len,time_ms\n64,0.5\n128,1.0\n");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(CsvDeath, RejectsWrongArity) {
  std::string path = ::testing::TempDir() + "saloba_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_DEATH(csv.add_row({"1"}), "arity");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace saloba::util
