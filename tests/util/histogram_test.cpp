#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace saloba::util {
namespace {

TEST(Histogram, BucketsValuesCorrectly) {
  Histogram h(0, 100, 25);  // 4 buckets + overflow
  ASSERT_EQ(h.bucket_count(), 5u);
  h.add(0);
  h.add(24.9);
  h.add(25);
  h.add(99.9);
  h.add(100);   // overflow
  h.add(500);   // overflow
  h.add(-1);    // underflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(50, 250, 50);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 50.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 100.0);
}

TEST(Histogram, AddNCountsInBulk) {
  Histogram h(0, 10, 5);
  h.add_n(1.0, 42);
  EXPECT_EQ(h.bucket(0), 42u);
  EXPECT_EQ(h.total(), 42u);
}

TEST(Histogram, RenderShowsCountsAndBars) {
  Histogram h(0, 20, 10);
  h.add_n(5, 10);
  h.add_n(15, 5);
  std::string r = h.render(20);
  EXPECT_NE(r.find("10"), std::string::npos);
  EXPECT_NE(r.find("####"), std::string::npos);
  EXPECT_NE(r.find("+"), std::string::npos);  // overflow label
}

TEST(HistogramDeath, RejectsBadBounds) {
  EXPECT_DEATH(Histogram(10, 5, 1), "bad histogram bounds");
}

}  // namespace
}  // namespace saloba::util
