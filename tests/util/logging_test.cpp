#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace saloba::util {
namespace {

TEST(Logging, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Logging, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(Logging, SetAndGetLevel) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(original);
}

TEST(Logging, MacroRespectsLevel) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // Would abort/flood if emitted; mainly checks the macro compiles and the
  // guard short-circuits.
  SALOBA_INFO("this must not be emitted " << 42);
  SALOBA_ERROR("neither this " << 3.14);
  set_log_level(original);
}

}  // namespace
}  // namespace saloba::util
