// NamedRegistry: alias resolution, deterministic listing order, and the
// self-diagnosing unknown-name error message.
#include "util/registry.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

namespace saloba::util {
namespace {

using IntFactory = std::function<int()>;
using Registry = NamedRegistry<IntFactory>;

Registry two_entry_registry() {
  Registry reg("widget");
  reg.add({"beta", {"b", "B"}, [] { return 2; }, 20});
  reg.add({"alpha", {}, [] { return 1; }, 10});
  return reg;
}

TEST(NamedRegistry, ResolvesCanonicalNamesAndAliases) {
  auto reg = two_entry_registry();
  EXPECT_EQ(reg.at("alpha").factory(), 1);
  EXPECT_EQ(reg.at("beta").factory(), 2);
  EXPECT_EQ(reg.at("b").factory(), 2);
  EXPECT_EQ(reg.at("B").factory(), 2);
  EXPECT_EQ(reg.at("b").canonical, "beta");
}

TEST(NamedRegistry, FindReturnsNullOnMiss) {
  auto reg = two_entry_registry();
  EXPECT_EQ(reg.find("gamma"), nullptr);
  EXPECT_NE(reg.find("alpha"), nullptr);
}

TEST(NamedRegistry, NamesOrderedByRankNotRegistration) {
  auto reg = two_entry_registry();  // beta registered first but ranked later
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(NamedRegistry, UnknownNameMessageListsValidNames) {
  auto reg = two_entry_registry();
  try {
    reg.at("gamma");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("unknown widget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'gamma'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beta"), std::string::npos) << msg;
  }
}

TEST(NamedRegistry, DuplicateRegistrationThrows) {
  auto reg = two_entry_registry();
  EXPECT_THROW(reg.add({"alpha", {}, [] { return 3; }, 30}), std::logic_error);
  EXPECT_THROW(reg.add({"fresh", {"b"}, [] { return 3; }, 30}), std::logic_error);
}

}  // namespace
}  // namespace saloba::util
