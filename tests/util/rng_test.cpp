#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace saloba::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, LognormalAlwaysPositive) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(7.0, 0.5), 0.0);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 42;
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace saloba::util
