#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace saloba::util {
namespace {

TEST(Stats, MeanBasics) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.5}), 7.5);
}

TEST(Stats, GeomeanMatchesHandComputed) {
  std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_NEAR(geomean(std::vector<double>{2.26, 2.85}),
              std::sqrt(2.26 * 2.85), 1e-12);  // the paper's Sec.V-D geomean
}

TEST(Stats, StddevSampleConvention) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MedianAndPercentiles) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{10.0, 20.0}, 50), 15.0);
}

TEST(Stats, NearestRankHandComputed) {
  // Wikipedia's nearest-rank worked example: {15, 20, 35, 40, 50}.
  std::vector<double> xs{35, 20, 15, 50, 40};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 5), 15.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 30), 20.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 40), 20.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 50), 35.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0), 15.0);  // p = 0: the minimum
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(std::vector<double>{}, 99), 0.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(std::vector<double>{7.0}, 99), 7.0);
}

TEST(Stats, NearestRankP99SmallN) {
  // The QoS property AlignService leans on: with few samples, p99 is the
  // maximum (rank ceil(0.99 N) = N for N <= 99), never an interpolated
  // value that no request actually experienced.
  std::vector<double> xs;
  for (int n = 1; n <= 99; ++n) {
    xs.push_back(static_cast<double>(n));
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 99), max_of(xs)) << "N=" << n;
  }
  xs.push_back(100.0);  // N = 100: rank ceil(99.0) = 99 -> second-largest
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 99), 99.0);
}

TEST(Stats, NearestRankMatchesSortedReferenceOnRandomData) {
  // Property test against the definition: the k-th smallest with
  // k = ceil(p/100 * N), over random sizes, values, and percentiles.
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t n = 1 + static_cast<std::size_t>(rng.uniform() * 40);
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform() * 1000 - 500);
    double p = rng.uniform() * 100.0;
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, p), sorted[rank - 1])
        << "n=" << n << " p=" << p;
  }
}

TEST(Stats, NearestRankAlwaysReturnsAnObservedSample) {
  // Unlike the interpolating percentile(), the nearest-rank result is
  // always one of the inputs — a latency some pair actually saw.
  Xoshiro256 rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 17; ++i) xs.push_back(rng.uniform() * 10);
  for (double p : {0.0, 12.5, 50.0, 90.0, 99.0, 100.0}) {
    double v = percentile_nearest_rank(xs, p);
    EXPECT_NE(std::find(xs.begin(), xs.end(), v), xs.end()) << "p=" << p;
  }
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, CoefficientOfVariation) {
  std::vector<double> flat{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(coeff_variation(flat), 0.0);
  std::vector<double> spread{1, 9};
  EXPECT_GT(coeff_variation(spread), 0.5);
}

TEST(Stats, RunningMatchesBatchOnRandomData) {
  Xoshiro256 rng(11);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform() * 100 - 50;
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

TEST(StatsDeath, GeomeanRejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  EXPECT_DEATH(geomean(xs), "geomean requires positive");
}

}  // namespace
}  // namespace saloba::util
