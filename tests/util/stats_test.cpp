#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace saloba::util {
namespace {

TEST(Stats, MeanBasics) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.5}), 7.5);
}

TEST(Stats, GeomeanMatchesHandComputed) {
  std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_NEAR(geomean(std::vector<double>{2.26, 2.85}),
              std::sqrt(2.26 * 2.85), 1e-12);  // the paper's Sec.V-D geomean
}

TEST(Stats, StddevSampleConvention) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MedianAndPercentiles) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{10.0, 20.0}, 50), 15.0);
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, CoefficientOfVariation) {
  std::vector<double> flat{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(coeff_variation(flat), 0.0);
  std::vector<double> spread{1, 9};
  EXPECT_GT(coeff_variation(spread), 0.5);
}

TEST(Stats, RunningMatchesBatchOnRandomData) {
  Xoshiro256 rng(11);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform() * 100 - 50;
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

TEST(StatsDeath, GeomeanRejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  EXPECT_DEATH(geomean(xs), "geomean requires positive");
}

}  // namespace
}  // namespace saloba::util
