#include "util/table.hpp"

#include <gtest/gtest.h>

namespace saloba::util {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"kernel", "time"});
  t.add_row({"GASAL2", "1.00"});
  t.add_row({"SALoBa", "0.70"});
  std::string r = t.render();
  EXPECT_NE(r.find("kernel"), std::string::npos);
  EXPECT_NE(r.find("GASAL2"), std::string::npos);
  EXPECT_NE(r.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsPadToWidestCell) {
  Table t({"a"});
  t.add_row({"looooooooong"});
  std::string r = t.render();
  // Header line must be as wide as the data line.
  auto nl = r.find('\n');
  auto second = r.find('\n', nl + 1);
  auto third = r.find('\n', second + 1);
  EXPECT_EQ(nl, second - nl - 1 == 0 ? nl : r.find('\n'));  // lines exist
  EXPECT_EQ(r.substr(0, nl).size(), r.substr(second + 1, third - second - 1).size());
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, MsFormatsAdaptively) {
  EXPECT_NE(Table::ms(0.05).find("us"), std::string::npos);
  EXPECT_NE(Table::ms(5.0).find("ms"), std::string::npos);
  EXPECT_NE(Table::ms(500.0).find("ms"), std::string::npos);
}

TEST(TableDeath, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

}  // namespace
}  // namespace saloba::util
