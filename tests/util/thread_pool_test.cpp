#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hpp"

namespace saloba::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksPartitionExactly) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(107, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 107u);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, IndexedCoversRange) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for_indexed(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DeterministicOutputSlots) {
  std::vector<int> out(2000, -1);
  parallel_for_indexed(2000, [&](std::size_t i) { out[i] = static_cast<int>(i * 3); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i * 3));
}

}  // namespace
}  // namespace saloba::util
